//! Dependency DAGs for the reversible pebbling game.
//!
//! Following the paper (Section II-A), a [`Dag`] contains one node per
//! operation of a decomposed computation; an edge runs from `v` to `w`
//! when `w` consumes the value computed by `v`. **Primary inputs are not
//! nodes**: they are tracked separately and referenced through
//! [`Source::Input`], so a node whose fanins are all primary inputs has no
//! children in the pebbling sense (`C(v) = ∅`, cf. Example 1 in the paper).
//!
//! Nodes are added in topological order by construction — a fanin must
//! already exist — so node ids double as a topological order.

use std::collections::BTreeMap;
use std::fmt;

use crate::op::Op;

/// Identifier of a DAG node (dense, also a topological index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a primary input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InputId(pub(crate) u32);

impl InputId {
    /// The dense index of this input.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InputId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A fanin reference: either a primary input or another node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Source {
    /// A primary input.
    Input(InputId),
    /// The value computed by another node.
    Node(NodeId),
}

impl Source {
    /// Returns the node id if this source is a node.
    #[inline]
    pub fn as_node(self) -> Option<NodeId> {
        match self {
            Source::Node(id) => Some(id),
            Source::Input(_) => None,
        }
    }
}

impl From<NodeId> for Source {
    fn from(id: NodeId) -> Self {
        Source::Node(id)
    }
}

impl From<InputId> for Source {
    fn from(id: InputId) -> Self {
        Source::Input(id)
    }
}

/// A DAG node: an operation applied to fanin values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Human-readable name (for reports and DOT output).
    pub name: String,
    /// The operation computed by the node.
    pub op: Op,
    /// Fanins, in argument order.
    pub fanins: Vec<Source>,
    /// Number of memory resources (qubits) the node's value occupies.
    /// `1` for plain Boolean nodes; straight-line programs may use the
    /// word width. Used by the weighted pebbling extension.
    pub weight: u32,
}

/// Errors produced when constructing or validating a [`Dag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// A fanin refers to a node or input that does not exist (yet).
    UnknownSource {
        /// Name of the node being added.
        node: String,
    },
    /// The operation's arity does not match the number of fanins.
    ArityMismatch {
        /// Name of the node being added.
        node: String,
        /// The operation.
        op: Op,
        /// Number of fanins supplied.
        fanins: usize,
    },
    /// A node that no other node consumes is not marked as an output;
    /// the pebbling game requires the final configuration to be exactly
    /// the set of sinks.
    UnmarkedSink {
        /// The offending node.
        node: NodeId,
    },
    /// A node weight of zero was supplied.
    ZeroWeight {
        /// Name of the node being added.
        node: String,
    },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownSource { node } => {
                write!(f, "node {node:?} references an unknown fanin")
            }
            DagError::ArityMismatch { node, op, fanins } => {
                write!(
                    f,
                    "node {node:?}: operation {op} cannot take {fanins} fanins"
                )
            }
            DagError::UnmarkedSink { node } => {
                write!(f, "sink {node} is not marked as an output")
            }
            DagError::ZeroWeight { node } => write!(f, "node {node:?} has weight zero"),
        }
    }
}

impl std::error::Error for DagError {}

/// A dependency DAG (see the [module documentation](self)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dag {
    inputs: Vec<String>,
    nodes: Vec<Node>,
    outputs: Vec<NodeId>,
    is_output: Vec<bool>,
}

impl Dag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a primary input and returns a [`Source`] referring to it.
    pub fn add_input(&mut self, name: impl Into<String>) -> Source {
        let id = InputId(self.inputs.len() as u32);
        self.inputs.push(name.into());
        Source::Input(id)
    }

    /// Adds `n` anonymous inputs named `x0, x1, …` and returns them.
    pub fn add_inputs(&mut self, n: usize) -> Vec<Source> {
        (0..n)
            .map(|_| {
                let name = format!("x{}", self.inputs.len());
                self.add_input(name)
            })
            .collect()
    }

    /// Adds a node with weight 1.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::UnknownSource`] if a fanin does not exist and
    /// [`DagError::ArityMismatch`] if the operation's arity is violated
    /// (unary ops need exactly one fanin, `Maj` exactly three, all others
    /// at least one).
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        op: Op,
        fanins: impl IntoIterator<Item = Source>,
    ) -> Result<NodeId, DagError> {
        self.add_node_weighted(name, op, fanins, 1)
    }

    /// Adds a node with an explicit weight (see [`Node::weight`]).
    ///
    /// # Errors
    ///
    /// As [`add_node`](Self::add_node), plus [`DagError::ZeroWeight`] when
    /// `weight == 0`.
    pub fn add_node_weighted(
        &mut self,
        name: impl Into<String>,
        op: Op,
        fanins: impl IntoIterator<Item = Source>,
        weight: u32,
    ) -> Result<NodeId, DagError> {
        let name = name.into();
        let fanins: Vec<Source> = fanins.into_iter().collect();
        if weight == 0 {
            return Err(DagError::ZeroWeight { node: name });
        }
        for &source in &fanins {
            let known = match source {
                Source::Input(i) => i.index() < self.inputs.len(),
                Source::Node(n) => n.index() < self.nodes.len(),
            };
            if !known {
                return Err(DagError::UnknownSource { node: name });
            }
        }
        let arity_ok = match op {
            Op::Not | Op::Buf | Op::Sqr => fanins.len() == 1,
            Op::Maj => fanins.len() == 3,
            _ => !fanins.is_empty(),
        };
        if !arity_ok {
            return Err(DagError::ArityMismatch {
                node: name,
                op,
                fanins: fanins.len(),
            });
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name,
            op,
            fanins,
            weight,
        });
        self.is_output.push(false);
        Ok(id)
    }

    /// Marks a node as a primary output. Idempotent.
    pub fn mark_output(&mut self, node: NodeId) {
        if !self.is_output[node.index()] {
            self.is_output[node.index()] = true;
            self.outputs.push(node);
        }
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The input names.
    pub fn input_names(&self) -> &[String] {
        &self.inputs
    }

    /// Borrows a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterates over all node ids in topological order.
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The output nodes, in the order they were marked.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// `true` if `id` is marked as an output.
    pub fn is_output(&self, id: NodeId) -> bool {
        self.is_output[id.index()]
    }

    /// The *children* of `v` in the paper's sense: fanins that are nodes
    /// (primary inputs are always available and never pebbled).
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[id.index()]
            .fanins
            .iter()
            .filter_map(|s| s.as_node())
    }

    /// Computes, for every node, the list of nodes that consume it.
    pub fn fanouts(&self) -> Vec<Vec<NodeId>> {
        let mut fanouts = vec![Vec::new(); self.nodes.len()];
        for id in self.node_ids() {
            for child in self.children(id) {
                fanouts[child.index()].push(id);
            }
        }
        fanouts
    }

    /// Nodes that no other node consumes.
    pub fn sinks(&self) -> Vec<NodeId> {
        let mut has_fanout = vec![false; self.nodes.len()];
        for id in self.node_ids() {
            for child in self.children(id) {
                has_fanout[child.index()] = true;
            }
        }
        self.node_ids()
            .filter(|id| !has_fanout[id.index()])
            .collect()
    }

    /// Marks every sink as an output (convenience for generated DAGs).
    pub fn mark_sinks_as_outputs(&mut self) {
        for sink in self.sinks() {
            self.mark_output(sink);
        }
    }

    /// Checks the invariant required by the pebbling game: every sink is an
    /// output (a non-output sink could never be unpebbled afterwards, so
    /// no valid strategy would exist).
    ///
    /// # Errors
    ///
    /// Returns [`DagError::UnmarkedSink`] naming the first violating node.
    pub fn validate_for_pebbling(&self) -> Result<(), DagError> {
        for sink in self.sinks() {
            if !self.is_output(sink) {
                return Err(DagError::UnmarkedSink { node: sink });
            }
        }
        Ok(())
    }

    /// The level of each node: `1 + max(level of node fanins)`, where nodes
    /// fed only by primary inputs have level 1.
    pub fn levels(&self) -> Vec<u32> {
        let mut levels = vec![0u32; self.nodes.len()];
        for id in self.node_ids() {
            let max_child = self
                .children(id)
                .map(|c| levels[c.index()])
                .max()
                .unwrap_or(0);
            levels[id.index()] = max_child + 1;
        }
        levels
    }

    /// Depth of the DAG (maximum level; 0 for an empty DAG).
    pub fn depth(&self) -> u32 {
        self.levels().into_iter().max().unwrap_or(0)
    }

    /// The transitive fanin cone of `root`, including `root` itself,
    /// as a sorted list of node ids.
    pub fn cone(&self, root: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        seen[root.index()] = true;
        while let Some(v) = stack.pop() {
            for child in self.children(v) {
                if !seen[child.index()] {
                    seen[child.index()] = true;
                    stack.push(child);
                }
            }
        }
        self.node_ids().filter(|v| seen[v.index()]).collect()
    }

    /// Evaluates every node on the given primary-input values using
    /// [`Op::eval`] semantics; returns one value per node.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`num_inputs`](Self::num_inputs).
    pub fn evaluate(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs(), "wrong number of inputs");
        let mut values = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let fanin_values: Vec<bool> = node
                .fanins
                .iter()
                .map(|s| match s {
                    Source::Input(i) => inputs[i.index()],
                    Source::Node(n) => values[n.index()],
                })
                .collect();
            values.push(node.op.eval(&fanin_values));
        }
        values
    }

    /// Evaluates only the outputs on the given primary-input values.
    pub fn evaluate_outputs(&self, inputs: &[bool]) -> Vec<bool> {
        let values = self.evaluate(inputs);
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }

    /// Counts nodes per operation.
    pub fn op_counts(&self) -> BTreeMap<Op, usize> {
        let mut counts = BTreeMap::new();
        for node in &self.nodes {
            *counts.entry(node.op).or_insert(0) += 1;
        }
        counts
    }

    /// Sum of all node weights (total memory if everything stayed pebbled).
    pub fn total_weight(&self) -> u64 {
        self.nodes.iter().map(|n| u64::from(n.weight)).sum()
    }

    /// Returns a copy of the DAG with free nodes (`Not`/`Buf`) collapsed:
    /// their consumers are rewired to the free node's single fanin, and an
    /// output mark on a free node moves to its fanin. Logic polarity is
    /// deliberately dropped — pebbling only sees structure.
    pub fn collapse_free_nodes(&self) -> Dag {
        let mut result = Dag::new();
        for name in &self.inputs {
            result.add_input(name.clone());
        }
        // Map from old node to its replacement source in the new DAG.
        let mut remap: Vec<Option<Source>> = vec![None; self.nodes.len()];
        for id in self.node_ids() {
            let node = &self.nodes[id.index()];
            let mapped: Vec<Source> = node
                .fanins
                .iter()
                .map(|s| match s {
                    Source::Input(i) => Source::Input(*i),
                    Source::Node(n) => remap[n.index()].expect("fanins precede"),
                })
                .collect();
            if node.op.is_free() {
                remap[id.index()] = Some(mapped[0]);
            } else {
                let new_id = result
                    .add_node_weighted(node.name.clone(), node.op, mapped, node.weight)
                    .expect("remapped node is valid");
                remap[id.index()] = Some(Source::Node(new_id));
            }
        }
        for &output in &self.outputs {
            match remap[output.index()].expect("all nodes mapped") {
                Source::Node(n) => result.mark_output(n),
                Source::Input(_) => {
                    // An output that collapsed onto a primary input needs no
                    // computation at all; nothing to pebble.
                }
            }
        }
        result
    }

    /// A 128-bit canonical fingerprint of the DAG's *pebbling-relevant*
    /// structure, suitable as a result-cache key.
    ///
    /// Two DAGs receive the same fingerprint whenever they are isomorphic
    /// as pebbling instances: per node only the weight, the output mark
    /// and the multiset of child subtree fingerprints enter the hash —
    /// not node names, operations, insertion order or primary-input
    /// fanins (inputs are always available and never pebbled, so they
    /// don't constrain any strategy). Isomorphic instances admit exactly
    /// the same pebbling strategies, which is what makes the fingerprint
    /// sound as a cache key; 128 bits come from two independently salted
    /// streams so accidental collisions are out of reach for any
    /// realistic workload.
    pub fn canonical_fingerprint(&self) -> [u64; 2] {
        const SALTS: [u64; 2] = [0x9E37_79B9_7F4A_7C15, 0xC2B2_AE3D_27D4_EB4F];
        let mut fingerprint = [0u64; 2];
        for (slot, &salt) in fingerprint.iter_mut().zip(&SALTS) {
            // Bottom-up Merkle pass: ids are topological, so every child
            // hash exists before its consumers read it.
            let mut hashes = vec![0u64; self.nodes.len()];
            for id in self.node_ids() {
                let node = &self.nodes[id.index()];
                let mut children: Vec<u64> = self.children(id).map(|c| hashes[c.index()]).collect();
                children.sort_unstable();
                let mut h = splitmix64(
                    salt ^ (u64::from(node.weight) << 1) ^ u64::from(self.is_output(id)),
                );
                for child in children {
                    h = splitmix64(h ^ child);
                }
                hashes[id.index()] = h;
            }
            // Order-invariant roll-up over the node multiset.
            hashes.sort_unstable();
            let mut acc = splitmix64(salt ^ self.nodes.len() as u64);
            for h in hashes {
                acc = splitmix64(acc ^ h);
            }
            *slot = acc;
        }
        fingerprint
    }

    /// Renders the DAG in Graphviz DOT format.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph dag {\n  rankdir=BT;\n");
        for (i, name) in self.inputs.iter().enumerate() {
            let _ = writeln!(out, "  i{i} [label=\"{name}\", shape=plaintext];");
        }
        for id in self.node_ids() {
            let node = self.node(id);
            let shape = if self.is_output(id) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\\n{}\", shape={shape}];",
                id.index(),
                node.name,
                node.op
            );
        }
        for id in self.node_ids() {
            for source in &self.node(id).fanins {
                match source {
                    Source::Input(i) => {
                        let _ = writeln!(out, "  i{} -> n{};", i.index(), id.index());
                    }
                    Source::Node(n) => {
                        let _ = writeln!(out, "  n{} -> n{};", n.index(), id.index());
                    }
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

/// SplitMix64's finalizer: a cheap, well-mixed 64-bit permutation.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl fmt::Display for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dag({} inputs, {} nodes, {} outputs, depth {})",
            self.num_inputs(),
            self.num_nodes(),
            self.num_outputs(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example DAG of Fig. 2 in the paper:
    /// A(x2,x3), B(x3,x4), C(A,x3), D(B,x3), E(C,D), F(x1,A); outputs E, F.
    pub(crate) fn paper_dag() -> Dag {
        let mut dag = Dag::new();
        let x1 = dag.add_input("x1");
        let x2 = dag.add_input("x2");
        let x3 = dag.add_input("x3");
        let x4 = dag.add_input("x4");
        let a = dag.add_node("A", Op::Opaque, [x2, x3]).expect("valid");
        let b = dag.add_node("B", Op::Opaque, [x3, x4]).expect("valid");
        let c = dag
            .add_node("C", Op::Opaque, [a.into(), x3])
            .expect("valid");
        let d = dag
            .add_node("D", Op::Opaque, [b.into(), x3])
            .expect("valid");
        let e = dag
            .add_node("E", Op::Opaque, [c.into(), d.into()])
            .expect("valid");
        let f = dag
            .add_node("F", Op::Opaque, [x1, a.into()])
            .expect("valid");
        dag.mark_output(e);
        dag.mark_output(f);
        dag
    }

    #[test]
    fn paper_example_shape() {
        let dag = paper_dag();
        assert_eq!(dag.num_inputs(), 4);
        assert_eq!(dag.num_nodes(), 6);
        assert_eq!(dag.num_outputs(), 2);
        assert_eq!(dag.depth(), 3);
        // A has no children (only primary inputs), matching Example 1.
        let a = NodeId::from_index(0);
        assert_eq!(dag.children(a).count(), 0);
        // E depends on C and D.
        let e = NodeId::from_index(4);
        let kids: Vec<_> = dag.children(e).collect();
        assert_eq!(kids.len(), 2);
        dag.validate_for_pebbling().expect("outputs are the sinks");
    }

    #[test]
    fn unknown_fanin_is_rejected() {
        let mut dag = Dag::new();
        let ghost = Source::Node(NodeId::from_index(7));
        let err = dag.add_node("g", Op::And, [ghost]).expect_err("must fail");
        assert!(matches!(err, DagError::UnknownSource { .. }));
    }

    #[test]
    fn arity_is_checked() {
        let mut dag = Dag::new();
        let x = dag.add_input("x");
        let y = dag.add_input("y");
        assert!(matches!(
            dag.add_node("bad-not", Op::Not, [x, y]),
            Err(DagError::ArityMismatch { .. })
        ));
        assert!(matches!(
            dag.add_node("bad-maj", Op::Maj, [x, y]),
            Err(DagError::ArityMismatch { .. })
        ));
        assert!(matches!(
            dag.add_node("empty", Op::And, []),
            Err(DagError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn zero_weight_is_rejected() {
        let mut dag = Dag::new();
        let x = dag.add_input("x");
        assert!(matches!(
            dag.add_node_weighted("w0", Op::Buf, [x], 0),
            Err(DagError::ZeroWeight { .. })
        ));
    }

    #[test]
    fn sinks_and_validation() {
        let mut dag = Dag::new();
        let x = dag.add_input("x");
        let a = dag.add_node("a", Op::Buf, [x]).expect("valid");
        let b = dag.add_node("b", Op::Not, [a.into()]).expect("valid");
        assert_eq!(dag.sinks(), vec![b]);
        assert!(matches!(
            dag.validate_for_pebbling(),
            Err(DagError::UnmarkedSink { node }) if node == b
        ));
        dag.mark_sinks_as_outputs();
        dag.validate_for_pebbling().expect("now valid");
        assert!(dag.is_output(b));
        assert!(!dag.is_output(a));
    }

    #[test]
    fn levels_and_cone() {
        let dag = paper_dag();
        let levels = dag.levels();
        assert_eq!(levels, vec![1, 1, 2, 2, 3, 2]);
        let e = NodeId::from_index(4);
        let cone: Vec<usize> = dag.cone(e).iter().map(|n| n.index()).collect();
        assert_eq!(cone, vec![0, 1, 2, 3, 4]); // everything except F
    }

    #[test]
    fn fanouts_are_consistent() {
        let dag = paper_dag();
        let fanouts = dag.fanouts();
        // A feeds C and F.
        assert_eq!(
            fanouts[0],
            vec![NodeId::from_index(2), NodeId::from_index(5)]
        );
        // E feeds nothing.
        assert!(fanouts[4].is_empty());
    }

    #[test]
    fn evaluation_uses_op_semantics() {
        let mut dag = Dag::new();
        let x = dag.add_input("x");
        let y = dag.add_input("y");
        let and = dag.add_node("and", Op::And, [x, y]).expect("valid");
        let not = dag.add_node("not", Op::Not, [and.into()]).expect("valid");
        dag.mark_output(not);
        assert_eq!(dag.evaluate_outputs(&[true, true]), vec![false]);
        assert_eq!(dag.evaluate_outputs(&[true, false]), vec![true]);
    }

    #[test]
    fn collapse_free_nodes_rewires() {
        let mut dag = Dag::new();
        let x = dag.add_input("x");
        let y = dag.add_input("y");
        let inv = dag.add_node("inv", Op::Not, [x]).expect("valid");
        let buf = dag.add_node("buf", Op::Buf, [inv.into()]).expect("valid");
        let and = dag
            .add_node("and", Op::And, [buf.into(), y])
            .expect("valid");
        dag.mark_output(and);
        let collapsed = dag.collapse_free_nodes();
        assert_eq!(collapsed.num_nodes(), 1);
        let only = NodeId::from_index(0);
        assert_eq!(collapsed.node(only).op, Op::And);
        assert!(collapsed.is_output(only));
        // The AND's fanins are now the primary inputs directly.
        assert_eq!(collapsed.children(only).count(), 0);
    }

    #[test]
    fn collapse_output_on_free_node_moves_mark() {
        let mut dag = Dag::new();
        let x = dag.add_input("x");
        let y = dag.add_input("y");
        let and = dag.add_node("and", Op::And, [x, y]).expect("valid");
        let inv = dag.add_node("inv", Op::Not, [and.into()]).expect("valid");
        dag.mark_output(inv);
        let collapsed = dag.collapse_free_nodes();
        assert_eq!(collapsed.num_nodes(), 1);
        assert!(collapsed.is_output(NodeId::from_index(0)));
    }

    #[test]
    fn op_counts_and_weight() {
        let dag = paper_dag();
        let counts = dag.op_counts();
        assert_eq!(counts[&Op::Opaque], 6);
        assert_eq!(dag.total_weight(), 6);
    }

    #[test]
    fn dot_output_mentions_every_node() {
        let dag = paper_dag();
        let dot = dag.to_dot();
        for id in dag.node_ids() {
            assert!(dot.contains(&format!("n{}", id.index())));
        }
        assert!(dot.contains("doublecircle")); // outputs are highlighted
    }

    #[test]
    fn fingerprint_is_isomorphism_invariant() {
        // Build the paper DAG twice with different node names, operations
        // and insertion order of the independent first layer.
        let a = paper_dag();
        let mut b = Dag::new();
        let y1 = b.add_input("p");
        let y2 = b.add_input("q");
        let y3 = b.add_input("r");
        let y4 = b.add_input("s");
        // B before A; names and ops differ; structure is identical.
        let nb = b.add_node("beta", Op::And, [y3, y4]).expect("valid");
        let na = b.add_node("alpha", Op::Xor, [y2, y3]).expect("valid");
        let nd = b
            .add_node("delta", Op::And, [nb.into(), y3])
            .expect("valid");
        let nc = b
            .add_node("gamma", Op::And, [na.into(), y3])
            .expect("valid");
        let ne = b
            .add_node("eps", Op::And, [nc.into(), nd.into()])
            .expect("valid");
        let nf = b.add_node("phi", Op::And, [y1, na.into()]).expect("valid");
        b.mark_output(ne);
        b.mark_output(nf);
        assert_eq!(a.canonical_fingerprint(), b.canonical_fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_structure_weights_and_outputs() {
        let base = paper_dag();
        // An extra node changes the fingerprint.
        let mut extra = paper_dag();
        let x = extra.add_input("x5");
        let g = extra.add_node("G", Op::Opaque, [x]).expect("valid");
        extra.mark_output(g);
        assert_ne!(base.canonical_fingerprint(), extra.canonical_fingerprint());
        // A weight change alone changes the fingerprint.
        let mut dag_w1 = Dag::new();
        let x = dag_w1.add_input("x");
        let mut dag_w2 = dag_w1.clone();
        let n1 = dag_w1.add_node_weighted("n", Op::Buf, [x], 1).expect("ok");
        dag_w1.mark_output(n1);
        let n2 = dag_w2.add_node_weighted("n", Op::Buf, [x], 2).expect("ok");
        dag_w2.mark_output(n2);
        assert_ne!(
            dag_w1.canonical_fingerprint(),
            dag_w2.canonical_fingerprint()
        );
        // An output mark alone changes the fingerprint.
        let mut marked = paper_dag();
        marked.mark_output(NodeId::from_index(0));
        assert_ne!(base.canonical_fingerprint(), marked.canonical_fingerprint());
        // Deterministic across calls.
        assert_eq!(base.canonical_fingerprint(), base.canonical_fingerprint());
    }

    #[test]
    fn display_summary() {
        let dag = paper_dag();
        assert_eq!(
            dag.to_string(),
            "dag(4 inputs, 6 nodes, 2 outputs, depth 3)"
        );
    }
}
