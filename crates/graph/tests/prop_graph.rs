//! Property tests of the graph substrate: structural invariants of
//! generated DAGs, inverter collapsing, and netlist round-trips.

use proptest::prelude::*;
use revpebble_graph::generators::{iscas_proxy, random_dag, ProxyShape};
use revpebble_graph::network::xmg_ripple_adder;
use revpebble_graph::{Dag, NodeId, Op};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_dags_are_topologically_ordered(
        inputs in 1usize..6,
        nodes in 1usize..40,
        seed in any::<u64>(),
    ) {
        let dag = random_dag(inputs, nodes, seed);
        // Fanins always precede their consumers.
        for v in dag.node_ids() {
            for child in dag.children(v) {
                prop_assert!(child.index() < v.index());
            }
        }
        // Levels are consistent with edges.
        let levels = dag.levels();
        for v in dag.node_ids() {
            for child in dag.children(v) {
                prop_assert!(levels[child.index()] < levels[v.index()]);
            }
        }
        prop_assert!(dag.validate_for_pebbling().is_ok());
    }

    #[test]
    fn cones_are_closed_under_children(
        inputs in 1usize..5,
        nodes in 1usize..30,
        seed in any::<u64>(),
    ) {
        let dag = random_dag(inputs, nodes, seed);
        for &root in dag.outputs() {
            let cone = dag.cone(root);
            let in_cone = |n: NodeId| cone.binary_search(&n).is_ok();
            prop_assert!(in_cone(root));
            for &v in &cone {
                for child in dag.children(v) {
                    prop_assert!(in_cone(child));
                }
            }
        }
    }

    #[test]
    fn fanout_edges_match_fanin_edges(
        inputs in 1usize..5,
        nodes in 1usize..30,
        seed in any::<u64>(),
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let fanouts = dag.fanouts();
        let fanin_edges: usize = dag.node_ids().map(|v| dag.children(v).count()).sum();
        let fanout_edges: usize = fanouts.iter().map(Vec::len).sum();
        prop_assert_eq!(fanin_edges, fanout_edges);
    }

    #[test]
    fn collapse_preserves_evaluation(
        seed in any::<u64>(),
        nodes in 1usize..20,
    ) {
        // Build a DAG where outputs sit on non-free nodes so collapsing
        // cannot change output semantics up to inverter polarity; we check
        // a weaker but sound invariant here: the collapsed DAG is valid,
        // has no free nodes, and has no more nodes than the original.
        let dag = random_dag(3, nodes, seed);
        let collapsed = dag.collapse_free_nodes();
        prop_assert!(collapsed.num_nodes() <= dag.num_nodes());
        prop_assert!(collapsed.validate_for_pebbling().is_ok() || collapsed.num_nodes() == 0);
        for v in collapsed.node_ids() {
            prop_assert!(!collapsed.node(v).op.is_free());
        }
    }

    #[test]
    fn proxy_generator_is_exact_and_deterministic(
        pi in 1usize..20,
        po in 1usize..8,
        extra in 0usize..60,
        seed in any::<u64>(),
    ) {
        let shape = ProxyShape { inputs: pi, outputs: po, nodes: po + extra };
        let a = iscas_proxy(shape, seed);
        let b = iscas_proxy(shape, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.num_inputs(), pi);
        prop_assert_eq!(a.num_nodes(), po + extra);
        prop_assert!(a.num_outputs() >= po);
        prop_assert!(a.validate_for_pebbling().is_ok());
    }

    #[test]
    fn adder_network_matches_arithmetic(
        bits in 1usize..6,
        a in 0u32..64,
        b in 0u32..64,
    ) {
        let a = a & ((1 << bits) - 1);
        let b = b & ((1 << bits) - 1);
        let net = xmg_ripple_adder(bits);
        let mut inputs = Vec::new();
        for i in 0..bits {
            inputs.push(a & (1 << i) != 0);
        }
        for i in 0..bits {
            inputs.push(b & (1 << i) != 0);
        }
        let out = net.evaluate(&inputs);
        let sum: u32 = out.iter().enumerate().map(|(i, &v)| (v as u32) << i).sum();
        prop_assert_eq!(sum, a + b);
    }
}

#[test]
fn dag_equality_and_clone() {
    let dag = random_dag(4, 20, 7);
    let copy = dag.clone();
    assert_eq!(dag, copy);
    let other = random_dag(4, 20, 8);
    assert_ne!(dag, other);
}

#[test]
fn dot_export_is_parseable_shape() {
    let mut dag = Dag::new();
    let x = dag.add_input("x");
    let v = dag.add_node("v", Op::Not, [x]).expect("valid");
    dag.mark_output(v);
    let dot = dag.to_dot();
    assert!(dot.starts_with("digraph"));
    assert!(dot.trim_end().ends_with('}'));
    assert_eq!(dot.matches("->").count(), 1);
}
