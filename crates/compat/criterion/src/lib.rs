//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the criterion API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling it times a small fixed
//! number of iterations per benchmark and prints min/median wall-clock
//! times — enough to spot order-of-magnitude regressions in CI logs. In
//! test mode (`cargo test --benches` passes `--test`) every benchmark
//! runs exactly once, acting as a smoke test.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark manager handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    /// `true` when invoked by `cargo test` (run once, no timing loops).
    test_mode: bool,
    /// Substring filter from the command line, as in upstream criterion.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let test_mode = args.iter().any(|a| a == "--test");
        let filter = args.iter().find(|a| !a.starts_with('-')).cloned();
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations (upstream: samples) per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, |bencher| f(bencher));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id, |bencher| f(bencher, input));
        self
    }

    fn run(&mut self, id: &BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let full_name = format!("{}/{}", self.name, id.id);
        if let Some(filter) = &self.criterion.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        // Criterion's sample counts assume sub-second iterations; this
        // harness caps the measured iterations to keep `cargo bench` quick.
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size.clamp(1, 10)
        };
        let mut times: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            times.push(bencher.elapsed);
        }
        times.sort_unstable();
        let min = times.first().copied().unwrap_or_default();
        let median = times[times.len() / 2];
        println!(
            "bench {full_name:<50} min {min:>12.3?}   median {median:>12.3?}   ({samples} samples)"
        );
    }

    /// Ends the group (upstream finalizes reports here; a no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the benchmark body.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `routine` (upstream runs many; this harness
    /// samples at the group level instead).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let output = routine();
        self.elapsed = start.elapsed();
        drop(output);
    }
}

/// Re-export of [`std::hint::black_box`] under criterion's historical path.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("solve", 4).id, "solve/4");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }

    #[test]
    fn groups_run_benches_and_capture_timing() {
        let mut criterion = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut ran = 0;
        let mut group = criterion.benchmark_group("g");
        group.sample_size(20).bench_function("one", |b| {
            b.iter(|| ran += 1);
        });
        group.bench_with_input(BenchmarkId::new("two", 7), &7, |b, &x| {
            b.iter(|| assert_eq!(x, 7));
        });
        group.finish();
        assert_eq!(ran, 1); // test mode: exactly one sample
    }

    #[test]
    fn filter_skips_non_matching_benches() {
        let mut criterion = Criterion {
            test_mode: true,
            filter: Some("match_me".to_string()),
        };
        let mut ran = false;
        let mut group = criterion.benchmark_group("g");
        group.bench_function("other", |b| b.iter(|| ran = true));
        group.bench_function("match_me", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }
}
