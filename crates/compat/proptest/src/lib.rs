//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the proptest API its property tests use: the
//! [`proptest!`] macro with `pattern in strategy` bindings and an optional
//! `#![proptest_config(..)]` attribute, [`Strategy`](strategy::Strategy) with
//! [`prop_map`](strategy::Strategy::prop_map), [`any`](arbitrary::any), range and
//! tuple strategies, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! - **no shrinking** — a failing case reports its case number and the
//!   deterministic seed, which reproduces it exactly;
//! - **deterministic seeding** — cases are derived from a fixed seed plus
//!   the test name, so CI failures always reproduce locally;
//! - `prop_assert*` panic immediately instead of returning `Result`.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (only the case count is honoured).
pub mod test_runner {
    /// Configuration for a [`proptest!`](crate::proptest) block.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::*;

    /// A generator of random values of type [`Value`](Strategy::Value).
    ///
    /// Unlike upstream proptest there is no value tree and no shrinking:
    /// a strategy simply draws a value from an RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

/// The [`any`](arbitrary::any) entry point and the [`Arbitrary`](arbitrary::Arbitrary)
/// (arbitrary::Arbitrary) trait.
pub mod arbitrary {
    use super::*;
    use crate::strategy::Strategy;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value covering the whole domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> u32 {
            rng.gen()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> u64 {
            rng.gen()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut StdRng) -> usize {
            rng.gen::<u64>() as usize
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut StdRng) -> u8 {
            (rng.gen::<u32>() & 0xFF) as u8
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (uniform over its whole domain).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

/// Collection strategies ([`vec`](collection::vec)).
pub mod collection {
    use super::*;
    use crate::strategy::Strategy;

    /// A source of collection sizes (from a fixed size or a range).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`](vec()).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Runtime support used by the [`proptest!`] macro expansion; not part of
/// the public proptest API surface.
pub mod runner {
    use super::*;

    /// Deterministic RNG for one property test, derived from a fixed
    /// global seed plus the test name (FNV-1a).
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(hash)
    }
}

/// The most commonly used items; property tests glob-import this.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: `#[test]` functions whose arguments are drawn
/// from strategies (`name(binding in strategy, ..) { body }`), each run
/// for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::runner::rng_for(stringify!($name));
            for case in 0..config.cases {
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case}/{} of {} failed (deterministic seed: rerun reproduces it)",
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0usize..4, any::<bool>()).prop_map(|(n, b)| (n * 2, b)),
        ) {
            prop_assert!(pair.0 % 2 == 0 && pair.0 < 8);
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in prop::collection::vec(any::<u64>(), 2..=5),
        ) {
            prop_assert!((2..=5).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::runner::rng_for("some_test");
        let mut b = crate::runner::rng_for("some_test");
        let sa: Vec<u64> = (0..10)
            .map(|_| crate::arbitrary::Arbitrary::arbitrary(&mut a))
            .collect();
        let sb: Vec<u64> = (0..10)
            .map(|_| crate::arbitrary::Arbitrary::arbitrary(&mut b))
            .collect();
        assert_eq!(sa, sb);
    }
}
