//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny subset of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`]. The generator is SplitMix64 — statistically solid
//! for test-workload generation, deterministic per seed, and dependency
//! free. It makes no attempt to be bit-compatible with upstream `rand`;
//! everything in this repository treats seeds as opaque.

#![warn(missing_docs)]

/// Random number generators (only [`rngs::StdRng`] is provided).
pub mod rngs {
    /// A deterministic pseudo-random generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seeding support. Only [`seed_from_u64`](SeedableRng::seed_from_u64) is
/// implemented.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Avoid the all-zero fixed point and decorrelate small seeds.
        StdRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value that can be sampled uniformly from the full domain
/// (the stand-in for `rand`'s `Standard` distribution).
pub trait SampleValue {
    /// Draws one value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl SampleValue for f64 {
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 random mantissa bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleValue for u64 {
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl SampleValue for u32 {
    fn sample(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleValue for bool {
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                // `span + 1` would overflow on a full 64-bit domain, where
                // every u64 is a valid sample anyway.
                let offset = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.next_u64() % (span + 1)
                };
                start + offset as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

/// The subset of `rand`'s `Rng` trait used by this workspace.
pub trait Rng {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: SampleValue>(&mut self) -> T;

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen<T: SampleValue>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as SampleValue>::sample(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: usize = rng.gen_range(1..=3);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn full_domain_inclusive_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(5);
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let _: usize = rng.gen_range(0..=usize::MAX);
        let _: u8 = rng.gen_range(0..=u8::MAX);
        let _: u64 = rng.gen_range(u64::MAX..=u64::MAX);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // Mean of 1000 uniforms is near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let trues = (0..1000).filter(|_| rng.gen::<bool>()).count();
        assert!((400..600).contains(&trues));
    }
}
