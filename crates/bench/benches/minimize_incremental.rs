//! Fresh-per-probe vs. incremental pebble minimization (the Table I
//! search loop): same budgets probed, but the incremental engine drives
//! every probe through one assumption-bounded encoding/solver instance,
//! carrying learnt clauses, VSIDS activities and saved phases across
//! probes — plus the `(steps, pebbles)` monotonicity skip that never
//! re-proves a refutation a looser budget already paid for.
//!
//! Alongside the wall-clock numbers a one-off audit prints the total SAT
//! conflicts and queries of both engines. On the Table I workload `c17`
//! (exponential deepening, the `table1` harness configuration) the
//! incremental engine reports strictly fewer total conflicts than the
//! fresh-per-probe baseline; the single-instance claim itself is audited
//! via `sat.solves == search.queries`.
//!
//! Every audited run also lands in the machine-readable `BENCH_sat.json`
//! (wall-clock + propagations + conflicts + arena GCs for `paper`, `c17`
//! and the timeout-bound Table I row `b3_m4`), giving later PRs a
//! committed perf trajectory. The `b3_m4` audit additionally asserts that
//! the clause arena was garbage-collected at least once — the workload CI
//! uses to prove the mark-compact path runs in production-shaped searches.

use criterion::{criterion_group, criterion_main, Criterion};
use revpebble::core::{
    BudgetSchedule, EncodingOptions, MinimizeResult, MoveMode, PebblingSession, SessionOutcome,
    SolverOptions, StepSchedule,
};
use revpebble::graph::generators::paper_example;
use revpebble::graph::{parse_bench, Dag};
use revpebble_bench::{record_bench_json, table1_dag, BenchRecord, TABLE1};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn base(schedule: StepSchedule, max_steps: usize) -> SolverOptions {
    SolverOptions {
        encoding: EncodingOptions {
            move_mode: MoveMode::Sequential,
            ..EncodingOptions::default()
        },
        schedule,
        max_steps,
        ..SolverOptions::default()
    }
}

/// One minimize search through the session front door (what the bench
/// measures is exactly what the CLI and the library run).
fn minimize_session(
    dag: &Dag,
    base: SolverOptions,
    schedule: BudgetSchedule,
    incremental: bool,
    per_query: Duration,
) -> MinimizeResult {
    let report = PebblingSession::new(dag)
        .solver_options(base)
        .minimize()
        .budget(schedule)
        .incremental(incremental)
        .per_query_timeout(per_query)
        .run()
        .expect("a valid bench configuration");
    match report.outcome {
        SessionOutcome::Minimize(result) => result,
        _ => unreachable!("a single-worker minimize session ran"),
    }
}

/// One timed minimize run, recorded for `BENCH_sat.json`.
fn audit(
    name: &str,
    engine: &str,
    dag: &Dag,
    base: SolverOptions,
    schedule: BudgetSchedule,
    incremental: bool,
    per_query: Duration,
) -> (MinimizeResult, BenchRecord) {
    let start = Instant::now();
    let result = minimize_session(dag, base, schedule, incremental, per_query);
    let wall_s = start.elapsed().as_secs_f64();
    let record = BenchRecord {
        bench: "minimize_incremental",
        id: format!("{engine}/{name}"),
        wall_s,
        propagations: result.sat.propagations,
        conflicts: result.sat.conflicts,
        arena_gcs: result.sat.arena_gcs,
        imports: result.sat.imported_clauses,
        exports: result.sat.exported_clauses,
        dropped: result.sat.dropped_clauses,
        certified: result.best.as_ref().map(|&(p, _)| p as u64),
    };
    (result, record)
}

fn bench_minimize_incremental(c: &mut Criterion) {
    let mut records = Vec::new();
    let mut group = c.benchmark_group("minimize_incremental");
    group.sample_size(10);
    let paper = paper_example();
    let c17 = parse_bench(revpebble::graph::data::C17_BENCH).expect("parses");
    // Infeasible-budget probes terminate via max_steps (StepLimit), not
    // the clock, so the conflict comparison measures search work — the
    // generous per-probe budget never fires on these instances.
    let per_query = Duration::from_secs(120);
    let workloads = [
        ("paper", &paper, base(StepSchedule::Linear, 20)),
        ("c17", &c17, base(StepSchedule::ExponentialRefine, 30)),
    ];
    for (name, dag, options) in workloads {
        let (fresh, fresh_record) = audit(
            name,
            "fresh",
            dag,
            options,
            BudgetSchedule::Binary,
            false,
            per_query,
        );
        let (incremental, incremental_record) = audit(
            name,
            "incremental",
            dag,
            options,
            BudgetSchedule::Binary,
            true,
            per_query,
        );
        records.push(fresh_record);
        records.push(incremental_record);
        assert_eq!(
            fresh.best.as_ref().map(|&(p, _)| p),
            incremental.best.as_ref().map(|&(p, _)| p),
            "{name}: both engines must certify the same minimum budget"
        );
        assert_eq!(
            incremental.sat.solves, incremental.search.queries as u64,
            "{name}: one solver instance must answer every query"
        );
        println!(
            "{name}: total conflicts fresh={} incremental={} | queries fresh={} incremental={} \
             | minimum budget {:?}",
            fresh.sat.conflicts,
            incremental.sat.conflicts,
            fresh.search.queries,
            incremental.search.queries,
            incremental.best.as_ref().map(|&(p, _)| p),
        );
        group.bench_function(format!("fresh/{name}"), |b| {
            b.iter(|| {
                black_box(minimize_session(
                    black_box(dag),
                    options,
                    BudgetSchedule::Binary,
                    false,
                    per_query,
                ))
            })
        });
        group.bench_function(format!("incremental/{name}"), |b| {
            b.iter(|| {
                black_box(minimize_session(
                    black_box(dag),
                    options,
                    BudgetSchedule::Binary,
                    true,
                    per_query,
                ))
            })
        });
    }
    group.finish();

    // The timeout-bound Table I row `b3_m4`, in the `table1` harness
    // configuration (parallel moves, exponential deepening, descending
    // budget schedule, 2 s per probe). Timed once per engine — seconds,
    // not criterion loops. Timeout-bound quantities (which budget each
    // engine certifies) are machine-dependent, so they are *reported*,
    // not hard-asserted; only machine-robust invariants gate CI.
    let row = TABLE1.iter().find(|r| r.name == "b3_m4").expect("present");
    let dag = table1_dag(row);
    let n = dag.num_nodes();
    let b3_options = SolverOptions {
        encoding: EncodingOptions {
            move_mode: MoveMode::Parallel,
            ..EncodingOptions::default()
        },
        schedule: StepSchedule::ExponentialRefine,
        max_steps: 16 * n,
        step_stride: (n / 16).max(1),
        sat: revpebble::sat::SolverConfig {
            // A tighter learnt cap than the default third: reductions —
            // and with them arena GCs, the invariant CI asserts below —
            // then fire after a few thousand learnt clauses, which even a
            // much slower machine accumulates inside the 2 s probes.
            learntsize_factor: 0.05,
            ..revpebble::sat::SolverConfig::default()
        },
        ..SolverOptions::default()
    };
    let b3_schedule = BudgetSchedule::Descending {
        stride: (n / 12).max(1),
    };
    let b3_per_query = Duration::from_secs(2);
    let (fresh, fresh_record) = audit(
        "b3_m4",
        "fresh",
        &dag,
        b3_options,
        b3_schedule,
        false,
        b3_per_query,
    );
    let (incremental, incremental_record) = audit(
        "b3_m4",
        "incremental",
        &dag,
        b3_options,
        b3_schedule,
        true,
        b3_per_query,
    );
    let fresh_p = fresh.best.as_ref().map(|&(p, _)| p);
    let incremental_p = incremental.best.as_ref().map(|&(p, _)| p);
    println!(
        "b3_m4: certified budget fresh={fresh_p:?} incremental={incremental_p:?} | \
         wall fresh={:.2}s incremental={:.2}s | incremental arena GCs={}",
        fresh_record.wall_s, incremental_record.wall_s, incremental.sat.arena_gcs,
    );
    // The descending schedule's fallback certifies the trivially feasible
    // full budget even when every timed probe fails, so *some* budget is
    // certified on any machine.
    let fresh_p = fresh_p.expect("b3_m4 certifies under fresh probes");
    let incremental_p = incremental_p.expect("b3_m4 certifies under incremental probes");
    if incremental_p > fresh_p {
        // Expected on every measured box (warm probes certify tighter
        // budgets — the PR-2 result); timeout-bound, so only a warning.
        println!(
            "b3_m4: WARNING warm probes certified {incremental_p} vs fresh {fresh_p} \
             (timing-dependent; not failing the bench)"
        );
    }
    assert!(
        incremental.sat.arena_gcs >= 1,
        "the b3_m4 search must reduce its clause DB and GC the arena at least once"
    );
    records.push(fresh_record);
    records.push(incremental_record);
    record_bench_json("minimize_incremental", &records);
}

criterion_group!(benches, bench_minimize_incremental);
criterion_main!(benches);
