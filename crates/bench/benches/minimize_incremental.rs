//! Fresh-per-probe vs. incremental pebble minimization (the Table I
//! search loop): same budgets probed, but the incremental engine drives
//! every probe through one assumption-bounded encoding/solver instance,
//! carrying learnt clauses, VSIDS activities and saved phases across
//! probes — plus the `(steps, pebbles)` monotonicity skip that never
//! re-proves a refutation a looser budget already paid for.
//!
//! Alongside the wall-clock numbers a one-off audit prints the total SAT
//! conflicts and queries of both engines. On the Table I workload `c17`
//! (exponential deepening, the `table1` harness configuration) the
//! incremental engine reports strictly fewer total conflicts than the
//! fresh-per-probe baseline; the single-instance claim itself is audited
//! via `sat.solves == search.queries`.

use criterion::{criterion_group, criterion_main, Criterion};
use revpebble::core::{
    minimize_pebbles, minimize_pebbles_fresh, EncodingOptions, MoveMode, SolverOptions,
    StepSchedule,
};
use revpebble::graph::generators::paper_example;
use revpebble::graph::parse_bench;
use std::hint::black_box;
use std::time::Duration;

fn base(schedule: StepSchedule, max_steps: usize) -> SolverOptions {
    SolverOptions {
        encoding: EncodingOptions {
            move_mode: MoveMode::Sequential,
            ..EncodingOptions::default()
        },
        schedule,
        max_steps,
        ..SolverOptions::default()
    }
}

fn bench_minimize_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimize_incremental");
    group.sample_size(10);
    let paper = paper_example();
    let c17 = parse_bench(revpebble::graph::data::C17_BENCH).expect("parses");
    // Infeasible-budget probes terminate via max_steps (StepLimit), not
    // the clock, so the conflict comparison measures search work — the
    // generous per-probe budget never fires on these instances.
    let per_query = Duration::from_secs(120);
    let workloads = [
        ("paper", &paper, base(StepSchedule::Linear, 20)),
        ("c17", &c17, base(StepSchedule::ExponentialRefine, 30)),
    ];
    for (name, dag, options) in workloads {
        let fresh = minimize_pebbles_fresh(dag, options, per_query);
        let incremental = minimize_pebbles(dag, options, per_query);
        assert_eq!(
            fresh.best.as_ref().map(|&(p, _)| p),
            incremental.best.as_ref().map(|&(p, _)| p),
            "{name}: both engines must certify the same minimum budget"
        );
        assert_eq!(
            incremental.sat.solves, incremental.search.queries as u64,
            "{name}: one solver instance must answer every query"
        );
        println!(
            "{name}: total conflicts fresh={} incremental={} | queries fresh={} incremental={} \
             | minimum budget {:?}",
            fresh.sat.conflicts,
            incremental.sat.conflicts,
            fresh.search.queries,
            incremental.search.queries,
            incremental.best.as_ref().map(|&(p, _)| p),
        );
        group.bench_function(format!("fresh/{name}"), |b| {
            b.iter(|| black_box(minimize_pebbles_fresh(black_box(dag), options, per_query)))
        });
        group.bench_function(format!("incremental/{name}"), |b| {
            b.iter(|| black_box(minimize_pebbles(black_box(dag), options, per_query)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_minimize_incremental);
criterion_main!(benches);
