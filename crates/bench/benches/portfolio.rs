//! Portfolio-vs-single-configuration benchmarks on the pebbling
//! workloads: how much wall-clock the first-winner-takes-all race
//! recovers (or costs, on instances too small to amortize thread spawn).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revpebble::core::PebblingSession;
use revpebble::graph::generators::{and_tree, chain, paper_example};
use std::hint::black_box;

fn bench_portfolio_vs_single(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio_vs_single");
    group.sample_size(10);
    let workloads: Vec<(&str, revpebble::graph::Dag, usize)> = vec![
        ("paper_at_4", paper_example(), 4),
        ("and_tree9_at_7", and_tree(9), 7),
        ("chain10_at_5", chain(10), 5),
    ];
    for (name, dag, budget) in &workloads {
        group.bench_with_input(BenchmarkId::new("single", name), budget, |b, &budget| {
            b.iter(|| {
                PebblingSession::new(black_box(dag))
                    .pebbles(budget)
                    .run()
                    .expect("a valid bench configuration")
                    .into_strategy()
                    .expect("feasible")
            })
        });
        for workers in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("portfolio{workers}"), name),
                budget,
                |b, &budget| {
                    b.iter(|| {
                        PebblingSession::new(black_box(dag))
                            .pebbles(budget)
                            .portfolio(workers)
                            .run()
                            .expect("a valid bench configuration")
                            .into_strategy()
                            .expect("feasible")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_portfolio_vs_single);
criterion_main!(benches);
