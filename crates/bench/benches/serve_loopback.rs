//! Loopback serving throughput of the `revpebble-serve` daemon: eight
//! persistent clients each stream six requests (alternating two
//! cacheable fixed-budget workloads) at a 4-worker daemon over TCP on
//! 127.0.0.1. The first round pays the cold solves; every later round is
//! answered from the shared `ResultCache`, so the measured mix is
//! dominated by the daemon's own overhead — framing, parsing,
//! admission, cancellation plumbing — exactly what this bench guards.
//!
//! Measured quantities, landed in `BENCH_sat.json` for the `bench_gate`
//! wall-clock drift check (all in seconds, so the generic ≤2× gate
//! applies to each):
//!
//! - `loopback48/workers4/wall` — total wall of the whole run;
//! - `loopback48/workers4/s_per_request` — mean seconds per answered
//!   request (the inverse of requests/sec, oriented so drift *up* =
//!   regression);
//! - `loopback48/workers4/p50` and `…/p99` — per-request latency
//!   percentiles as the clients saw them (send → response line).
//!
//! Machine-robust invariants are asserted (every request answers `ok`,
//! repeat rounds hit the cache); absolute rates are printed.

use std::time::Instant;

use revpebble::graph::parse_json;
use revpebble_bench::{record_bench_json, BenchRecord};
use revpebble_serve::{Client, Request, ServeConfig, Server};

const WORKERS: usize = 4;
const CLIENTS: usize = 8;
const ROUNDS: usize = 6;

/// The two alternating workloads: fixed budgets known feasible (the
/// paper example fits in 4 pebbles; so does the real `c17`), so a cold
/// solve is milliseconds and a warm one is a cache lookup.
fn request_for(client: usize, round: usize) -> Request {
    let dag = if (client + round).is_multiple_of(2) {
        "paper"
    } else {
        "c17"
    };
    let mut request = Request::builtin(format!("c{client}-r{round}"), dag);
    request.pebbles = Some(4);
    request
}

fn percentile(sorted: &[f64], fraction: f64) -> f64 {
    let index = ((sorted.len() as f64 - 1.0) * fraction).round() as usize;
    sorted[index]
}

fn main() {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: WORKERS,
        connections: CLIENTS * 2,
        max_pending: CLIENTS * ROUNDS,
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral loopback port");
    let addr = server.local_addr();
    let handle = server.handle();
    let accept_thread = std::thread::spawn(move || server.run());

    let start = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let mut connection = Client::connect(addr).expect("connect to the daemon");
                let mut latencies = Vec::with_capacity(ROUNDS);
                for round in 0..ROUNDS {
                    let frame = request_for(client, round).to_json();
                    let sent = Instant::now();
                    let response = connection.send_raw(&frame).expect("a response line");
                    latencies.push(sent.elapsed().as_secs_f64());
                    let value = parse_json(&response).expect("valid response JSON");
                    assert_eq!(
                        value.get("status").and_then(|s| s.as_str()),
                        Some("ok"),
                        "client {client} round {round}: {response}"
                    );
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::with_capacity(CLIENTS * ROUNDS);
    for client in clients {
        latencies.extend(client.join().expect("client thread"));
    }
    let wall_s = start.elapsed().as_secs_f64();
    let requests = CLIENTS * ROUNDS;

    let stats = {
        handle.shutdown();
        accept_thread
            .join()
            .expect("the accept loop must not panic")
    };
    assert_eq!(stats.ok as usize, requests, "every request answers ok");
    assert_eq!(
        (stats.cache_hits + stats.cache_misses) as usize,
        requests,
        "every request consults the shared cache exactly once"
    );
    // Two distinct (dag, configuration) questions exist; in the worst
    // race every first-round client misses, but every later round must
    // be served from the cache.
    assert!(
        stats.cache_hits as usize >= requests - 2 * CLIENTS,
        "repeat rounds are served from the cache (hits: {})",
        stats.cache_hits
    );

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let per_request = wall_s / requests as f64;
    println!(
        "serve_loopback: {requests} requests from {CLIENTS} clients on {WORKERS} workers \
         in {wall_s:.3}s ({:.1} requests/s) | latency p50={p50:.4}s p99={p99:.4}s \
         | cache {} hits / {} misses | {} contained panics",
        requests as f64 / wall_s,
        stats.cache_hits,
        stats.cache_misses,
        stats.contained_panics,
    );

    // The daemon surfaces no propagation counters over the wire; the
    // unmeasured counters stay 0.
    let record = |suffix: &str, value: f64| BenchRecord {
        bench: "serve_loopback",
        id: format!("loopback{requests}/workers{WORKERS}/{suffix}"),
        wall_s: value,
        propagations: 0,
        conflicts: 0,
        arena_gcs: 0,
        imports: 0,
        exports: 0,
        dropped: 0,
        certified: None,
    };
    record_bench_json(
        "serve_loopback",
        &[
            record("wall", wall_s),
            record("s_per_request", per_request),
            record("p50", p50),
            record("p99", p99),
        ],
    );
}
