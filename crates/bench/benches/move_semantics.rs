//! Ablation bench: sequential vs parallel move semantics of the SAT
//! encoding (DESIGN.md's move-semantics ablation). Parallel steps shrink
//! `K` (fewer time points to encode) at the cost of more change freedom
//! per transition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revpebble::core::{EncodingOptions, MoveMode, PebbleSolver, SolverOptions};
use revpebble::graph::generators::{and_tree, paper_example};
use std::hint::black_box;

fn solve(dag: &revpebble::graph::Dag, budget: usize, mode: MoveMode) -> usize {
    let options = SolverOptions {
        encoding: EncodingOptions {
            max_pebbles: Some(budget),
            move_mode: mode,
            ..EncodingOptions::default()
        },
        ..SolverOptions::default()
    };
    PebbleSolver::new(dag, options)
        .solve()
        .into_strategy()
        .expect("feasible")
        .num_moves()
}

fn bench_move_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("move_semantics");
    group.sample_size(10);
    let cases = [
        ("paper_example@4", paper_example(), 4usize),
        ("and_tree8@7", and_tree(8), 7),
        ("and_tree9@7", and_tree(9), 7),
    ];
    for (name, dag, budget) in &cases {
        for mode in [MoveMode::Sequential, MoveMode::Parallel] {
            group.bench_with_input(
                BenchmarkId::new(format!("{mode:?}"), name),
                &(dag, *budget, mode),
                |b, (dag, budget, mode)| b.iter(|| black_box(solve(dag, *budget, *mode))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_move_modes);
criterion_main!(benches);
