//! Shared vs. isolated minimize portfolio (the cooperative layer): same
//! four workers racing budget schedules, but the shared configuration
//! exchanges short learnt clauses through one pool and certified
//! refutations (unsat-core bound tightening, budget floor) through one
//! blackboard.
//!
//! Alongside the wall-clock numbers a one-off audit asserts that the
//! shared race certifies the same minimum as the isolated race and the
//! single-worker incremental engine, and prints the cooperation counters:
//! clause imports/exports, the certified floor, and the number of
//! core-derived bound tightenings. On `b3_m4` (the smallest `H`-operator
//! row of Table I, run with the `table1` harness configuration of
//! parallel moves + exponential refine and a step cap) the audit checks
//! that clause imports are nonzero and at least one core-derived
//! lower-bound tightening fires.

use criterion::{criterion_group, criterion_main, Criterion};
use revpebble::core::{
    EncodingOptions, MinimizePortfolioOutcome, MinimizeResult, MoveMode, PebblingSession,
    SessionOutcome, ShareOptions, SolverOptions, StepSchedule,
};
use revpebble::graph::generators::chain;
use revpebble::graph::parse_bench;
use revpebble::graph::slp::h_operator_sized;
use revpebble::graph::Dag;
use std::hint::black_box;
use std::time::Duration;

const WORKERS: usize = 4;

/// One minimize race through the session front door.
fn race(
    dag: &Dag,
    base: SolverOptions,
    per_query: Duration,
    shared: bool,
) -> MinimizePortfolioOutcome {
    let mut session = PebblingSession::new(dag)
        .solver_options(base)
        .minimize()
        .portfolio(WORKERS)
        .per_query_timeout(per_query);
    if shared {
        session = session.share_clauses(ShareOptions::default());
    }
    let report = session.run().expect("a valid bench configuration");
    match report.outcome {
        SessionOutcome::MinimizePortfolio(outcome) => outcome,
        _ => unreachable!("a minimize portfolio ran"),
    }
}

/// The single-worker incremental reference, same front door.
fn single(dag: &Dag, base: SolverOptions, per_query: Duration) -> MinimizeResult {
    let report = PebblingSession::new(dag)
        .solver_options(base)
        .minimize()
        .per_query_timeout(per_query)
        .run()
        .expect("a valid bench configuration");
    match report.outcome {
        SessionOutcome::Minimize(result) => result,
        _ => unreachable!("a single-worker minimize ran"),
    }
}

struct Workload {
    name: &'static str,
    dag: Dag,
    base: SolverOptions,
    per_query: Duration,
    /// Assert nonzero clause imports and ≥ 1 core tightening (set on the
    /// workloads where the probes deterministically produce them).
    assert_cooperation: bool,
    /// Every probe ends in SAT/UNSAT within the per-query budget, so all
    /// engines must certify the *same* minimum. Timeout-bound workloads
    /// (`b3_m4` under a 2 s probe clock) legitimately disagree: which
    /// budgets get certified depends on wall-clock and core contention.
    decisive: bool,
}

fn base(mode: MoveMode, schedule: StepSchedule, max_steps: usize) -> SolverOptions {
    SolverOptions {
        encoding: EncodingOptions {
            move_mode: mode,
            ..EncodingOptions::default()
        },
        schedule,
        max_steps,
        ..SolverOptions::default()
    }
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "c17",
            dag: parse_bench(revpebble::graph::data::C17_BENCH).expect("parses"),
            base: base(MoveMode::Sequential, StepSchedule::Linear, 60),
            per_query: Duration::from_secs(20),
            assert_cooperation: true,
            decisive: true,
        },
        Workload {
            name: "b3_m4",
            // Table I's smallest H-operator row, with the `table1` harness
            // configuration: parallel moves + exponential refine. The step
            // cap sits above the paper's K = 117, so infeasible budgets
            // end in certified StepLimit refutations instead of timeouts.
            dag: h_operator_sized(59),
            base: base(MoveMode::Parallel, StepSchedule::ExponentialRefine, 150),
            per_query: Duration::from_secs(2),
            assert_cooperation: true,
            decisive: false,
        },
        Workload {
            name: "chain12",
            // The exponential space/time trade-off family: pebbling a
            // chain near the logarithmic budget floor needs exponentially
            // many recomputation steps, so tight budgets die by step cap —
            // exactly where the certified floor pays off.
            dag: chain(12),
            base: base(MoveMode::Sequential, StepSchedule::ExponentialRefine, 80),
            per_query: Duration::from_secs(2),
            assert_cooperation: false,
            decisive: false,
        },
    ]
}

fn bench_clause_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("clause_sharing");
    group.sample_size(10);
    for workload in workloads() {
        let Workload {
            name,
            dag,
            base,
            per_query,
            assert_cooperation,
            decisive,
        } = workload;
        let shared = race(&dag, base, per_query, true);
        let isolated = race(&dag, base, per_query, false);
        let single = single(&dag, base, per_query);
        let minimum =
            |best: &Option<(usize, revpebble::core::Strategy)>| best.as_ref().map(|&(p, _)| p);
        if decisive {
            assert_eq!(
                minimum(&shared.best),
                minimum(&single.best),
                "{name}: shared-pool portfolio and single-worker incremental must agree"
            );
            assert_eq!(
                minimum(&shared.best),
                minimum(&isolated.best),
                "{name}: sharing must not change the certified minimum"
            );
        }
        let (p, strategy) = shared.best.as_ref().expect("every workload is feasible");
        strategy
            .validate(&dag, Some(*p))
            .expect("shared-race strategies stay valid");
        assert!(
            shared.sharing.floor <= *p,
            "{name}: certified floor {} exceeds certified minimum {p}",
            shared.sharing.floor
        );
        let (imports, exports) = shared.workers.iter().fold((0u64, 0u64), |(i, e), w| {
            (
                i + w.result.sat.imported_clauses,
                e + w.result.sat.exported_clauses,
            )
        });
        let tightenings = shared.sharing.step_tightenings + shared.sharing.floor_raises;
        println!(
            "{name}: minimum={:?} | imports={imports} exports={exports} pool-published={} \
             | floor={} core-tightenings={tightenings}",
            minimum(&shared.best),
            shared.sharing.pool.published,
            shared.sharing.floor,
        );
        if assert_cooperation {
            assert!(imports > 0, "{name}: expected nonzero clause imports");
            assert!(
                tightenings > 0,
                "{name}: expected at least one core-derived lower-bound tightening"
            );
        }
        group.bench_function(format!("shared/{name}"), |b| {
            b.iter(|| black_box(race(black_box(&dag), base, per_query, true)))
        });
        group.bench_function(format!("isolated/{name}"), |b| {
            b.iter(|| black_box(race(black_box(&dag), base, per_query, false)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clause_sharing);
criterion_main!(benches);
