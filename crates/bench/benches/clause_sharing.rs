//! Shared vs. isolated minimize portfolio (the cooperative layer): same
//! four workers racing budget schedules, but the shared configuration
//! exchanges short learnt clauses through one pool and certified
//! refutations (unsat-core bound tightening, budget floor) through one
//! blackboard.
//!
//! Alongside the wall-clock numbers a one-off audit asserts that the
//! shared race certifies the same minimum as the isolated race and the
//! single-worker incremental engine, and prints the cooperation counters:
//! clause imports/exports, the certified floor, and the number of
//! core-derived bound tightenings. On `b3_m4` (the smallest `H`-operator
//! row of Table I, run with the `table1` harness configuration of
//! parallel moves + exponential refine and a step cap) the audit checks
//! that clause imports are nonzero and at least one core-derived
//! lower-bound tightening fires.
//!
//! A worker-scaling sweep additionally times the diversified shared race
//! on `b3_m4` at 2/4/8/16 workers and lands each point in the
//! machine-readable `BENCH_sat.json` (wall clock plus the summed
//! imports/exports/dropped counters of the lock-free pool), giving
//! `bench_gate` a committed scaling curve to compare against: the
//! 2→16-worker speedup may not collapse relative to the baseline, and
//! sharing counters that were alive may not drop to zero.

use criterion::{criterion_group, criterion_main, Criterion};
use revpebble::core::{
    EncodingOptions, MinimizePortfolioOutcome, MinimizeResult, MoveMode, PebblingSession,
    SessionOutcome, ShareOptions, SolverOptions, StepSchedule,
};
use revpebble::graph::generators::chain;
use revpebble::graph::parse_bench;
use revpebble::graph::slp::h_operator_sized;
use revpebble::graph::Dag;
use revpebble_bench::{record_bench_json, BenchRecord};
use std::hint::black_box;
use std::time::{Duration, Instant};

const WORKERS: usize = 4;

/// One minimize race through the session front door, at an explicit
/// worker count (the scaling sweep varies it; the audit uses [`WORKERS`]).
fn race_with(
    dag: &Dag,
    base: SolverOptions,
    per_query: Duration,
    workers: usize,
    share: Option<ShareOptions>,
) -> MinimizePortfolioOutcome {
    let mut session = PebblingSession::new(dag)
        .solver_options(base)
        .minimize()
        .portfolio(workers)
        .per_query_timeout(per_query);
    if let Some(share) = share {
        session = session.share_clauses(share);
    }
    let report = session.run().expect("a valid bench configuration");
    match report.outcome {
        SessionOutcome::MinimizePortfolio(outcome) => outcome,
        _ => unreachable!("a minimize portfolio ran"),
    }
}

/// The audit/criterion configuration: [`WORKERS`] workers, verbatim pool.
fn race(
    dag: &Dag,
    base: SolverOptions,
    per_query: Duration,
    shared: bool,
) -> MinimizePortfolioOutcome {
    race_with(
        dag,
        base,
        per_query,
        WORKERS,
        shared.then(ShareOptions::default),
    )
}

/// The single-worker incremental reference, same front door.
fn single(dag: &Dag, base: SolverOptions, per_query: Duration) -> MinimizeResult {
    let report = PebblingSession::new(dag)
        .solver_options(base)
        .minimize()
        .per_query_timeout(per_query)
        .run()
        .expect("a valid bench configuration");
    match report.outcome {
        SessionOutcome::Minimize(result) => result,
        _ => unreachable!("a single-worker minimize ran"),
    }
}

struct Workload {
    name: &'static str,
    dag: Dag,
    base: SolverOptions,
    per_query: Duration,
    /// Assert nonzero clause *exports* and ≥ 1 core tightening (set on
    /// the workloads where the probes deterministically produce them).
    assert_cooperation: bool,
    /// Additionally assert nonzero clause *imports*. Only sound where the
    /// probes are slow enough that workers provably interleave: on a
    /// single-core box a fast decisive race (c17) can be won outright by
    /// the first scheduled worker, cancelling the rivals before their
    /// first pool drain — exports flow, but nobody is left to read them.
    assert_imports: bool,
    /// Every probe ends in SAT/UNSAT within the per-query budget, so all
    /// engines must certify the *same* minimum. Timeout-bound workloads
    /// (`b3_m4` under a 2 s probe clock) legitimately disagree: which
    /// budgets get certified depends on wall-clock and core contention.
    decisive: bool,
}

fn base(mode: MoveMode, schedule: StepSchedule, max_steps: usize) -> SolverOptions {
    SolverOptions {
        encoding: EncodingOptions {
            move_mode: mode,
            ..EncodingOptions::default()
        },
        schedule,
        max_steps,
        ..SolverOptions::default()
    }
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "c17",
            dag: parse_bench(revpebble::graph::data::C17_BENCH).expect("parses"),
            base: base(MoveMode::Sequential, StepSchedule::Linear, 60),
            per_query: Duration::from_secs(20),
            assert_cooperation: true,
            assert_imports: false,
            decisive: true,
        },
        Workload {
            name: "b3_m4",
            // Table I's smallest H-operator row, with the `table1` harness
            // configuration: parallel moves + exponential refine. The step
            // cap sits above the paper's K = 117, so infeasible budgets
            // end in certified StepLimit refutations instead of timeouts.
            dag: h_operator_sized(59),
            base: base(MoveMode::Parallel, StepSchedule::ExponentialRefine, 150),
            per_query: Duration::from_secs(2),
            assert_cooperation: true,
            assert_imports: true,
            decisive: false,
        },
        Workload {
            name: "chain12",
            // The exponential space/time trade-off family: pebbling a
            // chain near the logarithmic budget floor needs exponentially
            // many recomputation steps, so tight budgets die by step cap —
            // exactly where the certified floor pays off.
            dag: chain(12),
            base: base(MoveMode::Sequential, StepSchedule::ExponentialRefine, 80),
            per_query: Duration::from_secs(2),
            assert_cooperation: false,
            assert_imports: false,
            decisive: false,
        },
    ]
}

/// The committed worker-scaling sweep: the diversified shared race on
/// `b3_m4` at 2/4/8/16 workers, each point recorded for `BENCH_sat.json`.
/// The probes are timeout-bound (2 s clock), so the sweep reports wall
/// clock and pool counters rather than asserting a curve shape — the
/// machine-relative comparison lives in `bench_gate`.
fn record_scaling_sweep() {
    let dag = h_operator_sized(59);
    let options = base(MoveMode::Parallel, StepSchedule::ExponentialRefine, 150);
    let per_query = Duration::from_secs(2);
    let mut records = Vec::new();
    for workers in [2usize, 4, 8, 16] {
        let start = Instant::now();
        let outcome = race_with(
            &dag,
            options,
            per_query,
            workers,
            Some(ShareOptions::diversified()),
        );
        let wall_s = start.elapsed().as_secs_f64();
        let sums = outcome.workers.iter().fold([0u64; 6], |mut acc, w| {
            let sat = &w.result.sat;
            acc[0] += sat.propagations;
            acc[1] += sat.conflicts;
            acc[2] += sat.arena_gcs;
            acc[3] += sat.imported_clauses;
            acc[4] += sat.exported_clauses;
            acc[5] += sat.dropped_clauses;
            acc
        });
        println!(
            "scaling b3_m4 workers={workers}: wall={wall_s:.2}s minimum={:?} \
             imports={} exports={} dropped={}",
            outcome.best.as_ref().map(|&(p, _)| p),
            sums[3],
            sums[4],
            sums[5],
        );
        records.push(BenchRecord {
            bench: "clause_sharing",
            id: format!("shared/b3_m4/workers{workers}"),
            wall_s,
            propagations: sums[0],
            conflicts: sums[1],
            arena_gcs: sums[2],
            imports: sums[3],
            exports: sums[4],
            dropped: sums[5],
            certified: outcome.best.as_ref().map(|&(p, _)| p as u64),
        });
    }
    record_bench_json("clause_sharing", &records);
}

fn bench_clause_sharing(c: &mut Criterion) {
    record_scaling_sweep();
    let mut group = c.benchmark_group("clause_sharing");
    group.sample_size(10);
    for workload in workloads() {
        let Workload {
            name,
            dag,
            base,
            per_query,
            assert_cooperation,
            assert_imports,
            decisive,
        } = workload;
        let shared = race(&dag, base, per_query, true);
        let isolated = race(&dag, base, per_query, false);
        let single = single(&dag, base, per_query);
        let minimum =
            |best: &Option<(usize, revpebble::core::Strategy)>| best.as_ref().map(|&(p, _)| p);
        if decisive {
            assert_eq!(
                minimum(&shared.best),
                minimum(&single.best),
                "{name}: shared-pool portfolio and single-worker incremental must agree"
            );
            assert_eq!(
                minimum(&shared.best),
                minimum(&isolated.best),
                "{name}: sharing must not change the certified minimum"
            );
        }
        let (p, strategy) = shared.best.as_ref().expect("every workload is feasible");
        strategy
            .validate(&dag, Some(*p))
            .expect("shared-race strategies stay valid");
        assert!(
            shared.sharing.floor <= *p,
            "{name}: certified floor {} exceeds certified minimum {p}",
            shared.sharing.floor
        );
        let (imports, exports) = shared.workers.iter().fold((0u64, 0u64), |(i, e), w| {
            (
                i + w.result.sat.imported_clauses,
                e + w.result.sat.exported_clauses,
            )
        });
        let tightenings = shared.sharing.step_tightenings + shared.sharing.floor_raises;
        println!(
            "{name}: minimum={:?} | imports={imports} exports={exports} pool-published={} \
             | floor={} core-tightenings={tightenings}",
            minimum(&shared.best),
            shared.sharing.pool.published,
            shared.sharing.floor,
        );
        if assert_cooperation {
            assert!(exports > 0, "{name}: expected nonzero clause exports");
            assert!(
                tightenings > 0,
                "{name}: expected at least one core-derived lower-bound tightening"
            );
        }
        if assert_imports {
            assert!(imports > 0, "{name}: expected nonzero clause imports");
        }
        group.bench_function(format!("shared/{name}"), |b| {
            b.iter(|| black_box(race(black_box(&dag), base, per_query, true)))
        });
        group.bench_function(format!("isolated/{name}"), |b| {
            b.iter(|| black_box(race(black_box(&dag), base, per_query, false)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clause_sharing);
criterion_main!(benches);
