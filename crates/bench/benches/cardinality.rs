//! Ablation bench: the three cardinality encodings behind the paper's
//! "at most P pebbles per step" clauses (DESIGN.md's encoding-choice
//! ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revpebble::sat::card::{at_most_k, CardEncoding};
use revpebble::sat::{Cnf, Lit, SolveResult, Solver, Var};
use std::hint::black_box;

/// Encoding size: clauses produced for n literals, bound k.
fn bench_encoding_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("card_encode");
    for &(n, k) in &[(40usize, 10usize), (80, 20)] {
        for encoding in [CardEncoding::SequentialCounter, CardEncoding::Totalizer] {
            group.bench_with_input(
                BenchmarkId::new(format!("{encoding:?}"), format!("n{n}_k{k}")),
                &(n, k),
                |b, &(n, k)| {
                    b.iter(|| {
                        let mut cnf = Cnf::new(n);
                        let lits: Vec<Lit> =
                            (0..n).map(|i| Var::from_index(i).positive()).collect();
                        at_most_k(&mut cnf, &lits, k, encoding);
                        black_box(cnf.len())
                    })
                },
            );
        }
    }
    group.finish();
}

/// Propagation strength: prove that forcing k+1 literals violates the
/// bound (UNSAT), per encoding.
fn bench_encoding_unsat(c: &mut Criterion) {
    let mut group = c.benchmark_group("card_unsat");
    group.sample_size(20);
    let (n, k) = (60usize, 15usize);
    for encoding in [CardEncoding::SequentialCounter, CardEncoding::Totalizer] {
        group.bench_with_input(
            BenchmarkId::new(format!("{encoding:?}"), format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                b.iter(|| {
                    let mut solver = Solver::new();
                    let vars = solver.new_vars(n);
                    let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
                    at_most_k(&mut solver, &lits, k, encoding);
                    for lit in &lits[..k + 1] {
                        solver.add_clause([*lit]);
                    }
                    assert_eq!(solver.solve(), SolveResult::Unsat);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encoding_size, bench_encoding_unsat);
criterion_main!(benches);
