//! Batch-serving throughput of the shared-executor session runtime: one
//! `BatchSession` serves a round-robin mix of minimize workloads (three
//! rounds over seven distinct DAGs) on a fixed 4-worker `Executor` with a
//! per-session conflict quota and a shared `ResultCache`. Repeat rounds
//! are where the cache earns its keep — by the third round every DAG's
//! answer is in the cache, so the measured batch mixes cold solves with
//! near-free replays, exactly like a real serving workload.
//!
//! Measured quantities, landed in `BENCH_sat.json` for the `bench_gate`
//! wall-clock drift check (all in seconds, so the generic ≤2× gate
//! applies to each):
//!
//! - `batch21/workers4/wall` — total wall of the whole batch;
//! - `batch21/workers4/s_per_session` — mean seconds per served session
//!   (the inverse of sessions/sec, oriented so drift *up* = regression);
//! - `batch21/workers4/p50` and `…/p99` — per-session latency
//!   percentiles over the batch (each session's own `Report::wall`).
//!
//! Machine-robust invariants are asserted (every session certifies, the
//! cache counters add up, repeats hit); absolute rates are printed.

use revpebble::core::{BatchSession, EncodingOptions, MoveMode, SolverOptions};
use revpebble::graph::generators::{and_tree, chain, paper_example, random_dag};
use revpebble::graph::{parse_bench, Dag};
use revpebble_bench::{record_bench_json, BenchRecord};
use std::time::{Duration, Instant};

const WORKERS: usize = 4;
const ROUNDS: usize = 3;

fn workloads() -> Vec<(String, Dag)> {
    vec![
        ("paper".to_string(), paper_example()),
        (
            "c17".to_string(),
            parse_bench(revpebble::graph::data::C17_BENCH).expect("embedded c17 parses"),
        ),
        ("andtree9".to_string(), and_tree(9)),
        ("andtree11".to_string(), and_tree(11)),
        ("chain12".to_string(), chain(12)),
        ("random12".to_string(), random_dag(4, 12, 0xDA7E_2019)),
        ("random14".to_string(), random_dag(5, 14, 0x5E55_1019)),
    ]
}

fn percentile(sorted: &[f64], fraction: f64) -> f64 {
    let index = ((sorted.len() as f64 - 1.0) * fraction).round() as usize;
    sorted[index]
}

fn main() {
    let dags = workloads();
    let sessions = dags.len() * ROUNDS;

    let mut batch = BatchSession::new(WORKERS)
        .expect("a positive worker count")
        .per_session_quota(5_000_000);
    let start = Instant::now();
    for round in 0..ROUNDS {
        for (name, dag) in &dags {
            // Decisive regime per DAG: a step cap above any optimum these
            // instances admit, so every probe ends in SAT or a certified
            // StepLimit and each session certifies without clock races.
            let base = SolverOptions {
                encoding: EncodingOptions {
                    move_mode: MoveMode::Sequential,
                    ..EncodingOptions::default()
                },
                max_steps: 4 * dag.num_nodes() + 20,
                ..SolverOptions::default()
            };
            batch
                .submit(format!("{name}#{round}"), dag, move |session| {
                    session
                        .solver_options(base)
                        .minimize()
                        .incremental(true)
                        .per_query_timeout(Duration::from_secs(60))
                })
                .expect("a valid batch configuration");
        }
    }
    let report = batch.finish();
    let wall_s = start.elapsed().as_secs_f64();

    assert_eq!(report.sessions.len(), sessions);
    let mut latencies = Vec::with_capacity(sessions);
    let (mut queries, mut conflicts) = (0u64, 0u64);
    for (name, session) in &report.sessions {
        assert!(
            session.minimum.is_some(),
            "{name}: every serving workload certifies (stop: {:?})",
            session.stop_reason
        );
        latencies.push(session.wall.as_secs_f64());
        for worker in &session.workers {
            queries += worker.queries as u64;
            conflicts += worker.conflicts;
        }
    }
    assert_eq!(
        report.cache_hits + report.cache_misses,
        sessions as u64,
        "every session consults the shared cache exactly once"
    );
    // Rounds 2 and 3 resubmit round 1's DAGs: with 4 workers and 15
    // FIFO-queued jobs, the last round starts long after the first
    // round's inserts, so repeats must hit.
    assert!(
        report.cache_hits >= ROUNDS as u64 - 1,
        "repeat rounds are served from the cache (hits: {})",
        report.cache_hits
    );

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let per_session = wall_s / sessions as f64;
    println!(
        "service_throughput: {sessions} sessions on {WORKERS} workers in {wall_s:.3}s \
         ({:.1} sessions/s) | latency p50={p50:.4}s p99={p99:.4}s | cache {} hits / {} misses \
         | {queries} SAT queries, {conflicts} conflicts",
        sessions as f64 / wall_s,
        report.cache_hits,
        report.cache_misses,
    );

    // Per-worker summaries surface conflicts but not propagations; the
    // unmeasured counters stay 0.
    let record = |suffix: &str, value: f64, with_counters: bool| BenchRecord {
        bench: "service_throughput",
        id: format!("batch{sessions}/workers{WORKERS}/{suffix}"),
        wall_s: value,
        propagations: 0,
        conflicts: if with_counters { conflicts } else { 0 },
        arena_gcs: 0,
        imports: 0,
        exports: 0,
        dropped: 0,
        certified: None,
    };
    record_bench_json(
        "service_throughput",
        &[
            record("wall", wall_s, true),
            record("s_per_session", per_session, false),
            record("p50", p50, false),
            record("p99", p99, false),
        ],
    );
}
