//! Criterion benches for the pebbling solver on the paper's workloads
//! (backs the runtime column of Table I and the Fig. 3/4 example).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revpebble::core::baselines::{bennett, cone_wise};
use revpebble::core::{EncodingOptions, MoveMode, PebbleSolver, PebblingSession, SolverOptions};
use revpebble::graph::generators::{and_tree, chain, paper_example};
use revpebble::graph::slp::h_operator;
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    let dag = and_tree(64);
    group.bench_function("bennett/and_tree_64", |b| {
        b.iter(|| black_box(bennett(black_box(&dag))))
    });
    group.bench_function("cone_wise/and_tree_64", |b| {
        b.iter(|| black_box(cone_wise(black_box(&dag))))
    });
    group.finish();
}

fn bench_paper_example(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig34");
    group.sample_size(20);
    let dag = paper_example();
    for budget in [4usize, 5, 6] {
        group.bench_with_input(BenchmarkId::new("solve", budget), &budget, |b, &budget| {
            b.iter(|| {
                PebblingSession::new(black_box(&dag))
                    .pebbles(budget)
                    .run()
                    .expect("a valid bench configuration")
                    .into_strategy()
                    .expect("feasible")
            })
        });
    }
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    let dag = and_tree(9);
    group.bench_function("and_tree9_at_7_pebbles", |b| {
        b.iter(|| {
            PebblingSession::new(black_box(&dag))
                .pebbles(7)
                .run()
                .expect("a valid bench configuration")
                .into_strategy()
                .expect("feasible")
        })
    });
    group.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads");
    group.sample_size(10);
    let h = h_operator().to_dag().expect("valid");
    group.bench_function("h_operator_at_6", |b| {
        b.iter(|| {
            PebblingSession::new(black_box(&h))
                .pebbles(6)
                .run()
                .expect("a valid bench configuration")
                .into_strategy()
                .expect("feasible")
        })
    });
    let ch = chain(10);
    group.bench_function("chain10_at_5", |b| {
        b.iter(|| {
            PebblingSession::new(black_box(&ch))
                .pebbles(5)
                .run()
                .expect("a valid bench configuration")
                .into_strategy()
                .expect("feasible")
        })
    });
    group.finish();
}

fn bench_step_stride_ablation(c: &mut Criterion) {
    // Ablation: larger deepening strides trade step-optimality for speed.
    let mut group = c.benchmark_group("stride_ablation");
    group.sample_size(10);
    let dag = chain(12);
    for stride in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("chain12_at_5", stride),
            &stride,
            |b, &stride| {
                b.iter(|| {
                    let options = SolverOptions {
                        encoding: EncodingOptions {
                            max_pebbles: Some(5),
                            move_mode: MoveMode::Sequential,
                            ..EncodingOptions::default()
                        },
                        step_stride: stride,
                        ..SolverOptions::default()
                    };
                    PebbleSolver::new(black_box(&dag), options)
                        .solve()
                        .into_strategy()
                        .expect("feasible")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_baselines,
    bench_paper_example,
    bench_fig6,
    bench_workloads,
    bench_step_stride_ablation
);
criterion_main!(benches);
