//! Benches of the CDCL substrate itself: structured UNSAT (pigeonhole)
//! and random 3-SAT near the phase transition. One timed run per
//! workload is also recorded in the machine-readable `BENCH_sat.json`
//! (wall-clock + propagations + conflicts + arena GCs) so the solver's
//! perf trajectory is committed alongside the code.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revpebble::sat::{Lit, SolveResult, Solver, Var};
use revpebble_bench::{record_bench_json, BenchRecord};
use std::hint::black_box;
use std::time::Instant;

fn pigeonhole(holes: usize) -> Solver {
    let mut solver = Solver::new();
    let vars = solver.new_vars((holes + 1) * holes);
    let p = |i: usize, j: usize| vars[i * holes + j].positive();
    for i in 0..=holes {
        solver.add_clause((0..holes).map(|j| p(i, j)));
    }
    for j in 0..holes {
        for a in 0..=holes {
            for b in (a + 1)..=holes {
                solver.add_clause([!p(a, j), !p(b, j)]);
            }
        }
    }
    solver
}

fn bench_pigeonhole(c: &mut Criterion) {
    let mut group = c.benchmark_group("pigeonhole");
    group.sample_size(10);
    for holes in [6usize, 7, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(holes), &holes, |b, &holes| {
            b.iter(|| {
                let mut solver = pigeonhole(holes);
                assert_eq!(solver.solve(), SolveResult::Unsat);
            })
        });
    }
    group.finish();
}

/// Deterministic xorshift for reproducible random 3-SAT instances.
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn random_3sat(num_vars: usize, num_clauses: usize, seed: u64) -> Solver {
    let mut rng = XorShift(seed | 1);
    let mut solver = Solver::new();
    let vars = solver.new_vars(num_vars);
    for _ in 0..num_clauses {
        let clause: Vec<Lit> = (0..3)
            .map(|_| {
                let v = vars[(rng.next() % num_vars as u64) as usize];
                Lit::new(v, rng.next() & 1 == 0)
            })
            .collect();
        solver.add_clause(clause);
    }
    solver
}

fn bench_random_3sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_3sat");
    group.sample_size(10);
    // Clause/variable ratio 4.2: near the phase transition.
    for n in [60usize, 100] {
        let m = (n as f64 * 4.2) as usize;
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, &n| {
            b.iter(|| {
                let mut solver = random_3sat(n, m, 0xDEAD_BEEF ^ n as u64);
                black_box(solver.solve())
            })
        });
    }
    group.finish();
}

fn bench_incremental_assumptions(c: &mut Criterion) {
    // The pebbling loop re-solves the same formula under shifting final
    // state assumptions; measure that pattern in isolation.
    let mut group = c.benchmark_group("incremental");
    group.sample_size(20);
    group.bench_function("assumption_flips", |b| {
        let mut solver = random_3sat(80, 300, 42);
        let assumption_vars: Vec<Var> = (0..8).map(Var::from_index).collect();
        let _ = solver.solve();
        let mut flip = 0u64;
        b.iter(|| {
            flip += 1;
            let assumptions: Vec<Lit> = assumption_vars
                .iter()
                .enumerate()
                .map(|(i, &v)| Lit::new(v, (flip >> i) & 1 == 0))
                .collect();
            black_box(solver.solve_with(&assumptions))
        })
    });
    group.finish();
}

/// One timed run per core workload, recorded in `BENCH_sat.json`.
fn record_baseline(_c: &mut Criterion) {
    let mut records = Vec::new();
    let mut measure = |id: String, mut solver: Solver, expected: Option<SolveResult>| {
        let start = Instant::now();
        let result = solver.solve();
        let wall_s = start.elapsed().as_secs_f64();
        if let Some(expected) = expected {
            assert_eq!(result, expected, "{id}");
        }
        let stats = solver.stats();
        records.push(BenchRecord {
            bench: "sat_solver",
            id,
            wall_s,
            propagations: stats.propagations,
            conflicts: stats.conflicts,
            arena_gcs: stats.arena_gcs,
            imports: stats.imported_clauses,
            exports: stats.exported_clauses,
            dropped: stats.dropped_clauses,
            certified: None,
        });
    };
    for holes in [7usize, 8] {
        measure(
            format!("pigeonhole/{holes}"),
            pigeonhole(holes),
            Some(SolveResult::Unsat),
        );
    }
    for n in [60usize, 100] {
        let m = (n as f64 * 4.2) as usize;
        measure(
            format!("random_3sat/{n}"),
            random_3sat(n, m, 0xDEAD_BEEF ^ n as u64),
            None,
        );
    }
    record_bench_json("sat_solver", &records);
}

criterion_group!(
    benches,
    bench_pigeonhole,
    bench_random_3sat,
    bench_incremental_assumptions,
    record_baseline
);
criterion_main!(benches);
