//! Shared helpers for the `revpebble-bench` binaries and criterion
//! benches: the Table I workload definitions, the `BENCH_sat.json`
//! writer/parser behind the perf-regression gate, and a tiny
//! CLI-argument parser (no external dependencies).
//!
//! # Example
//!
//! ```
//! use revpebble_bench::{table1_dag, TABLE1};
//!
//! // Materialize the smallest ISCAS row of the paper's Table I.
//! let row = TABLE1.iter().find(|r| r.name == "c17").expect("present");
//! let dag = table1_dag(row);
//! assert_eq!(dag.num_inputs(), row.pi);
//! assert_eq!(dag.num_outputs(), row.po);
//! dag.validate_for_pebbling().expect("ready for the pebbling game");
//! ```
//!
//! # The `BENCH_sat.json` regression gate
//!
//! Benches that call [`record_bench_json`] land their wall-clock and SAT
//! counters in the committed `BENCH_sat.json` baseline. CI's bench-smoke
//! job re-runs those benches into a *fresh* file (`BENCH_SAT_JSON=… cargo
//! bench …`) and then runs the `bench_gate` binary, which fails when any
//! entry's fresh wall-clock drifts more than 2× above the baseline:
//!
//! ```text
//! BENCH_SAT_JSON=fresh.json cargo bench -p revpebble-bench --bench minimize_incremental
//! cargo run -p revpebble-bench --bin bench_gate -- --baseline BENCH_sat.json --fresh fresh.json
//! ```
//!
//! Entries below the gate's noise floor (50 ms by default, `--min-wall`)
//! are skipped: at millisecond scale a 2× "drift" is scheduler noise.
//! When a deliberate change moves the numbers, re-record and commit the
//! baseline with the escape hatch:
//!
//! ```text
//! cargo run -p revpebble-bench --bin bench_gate -- --fresh fresh.json --update-baseline
//! ```
//!
//! which copies the fresh records over the baseline file instead of
//! gating; commit the rewritten `BENCH_sat.json` alongside the change
//! that justified it.

#![warn(missing_docs)]

use revpebble::graph::generators::{iscas_proxy, ProxyShape};
use revpebble::graph::slp::h_operator_sized;
use revpebble::graph::{parse_bench, Dag};

/// One row of the paper's Table I: the published design shape plus the
/// paper's measured values for reference printing.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// Design name as printed in the paper.
    pub name: &'static str,
    /// Primary inputs (paper's `pi`).
    pub pi: usize,
    /// Primary outputs (paper's `po`).
    pub po: usize,
    /// DAG nodes.
    pub nodes: usize,
    /// Paper: pebbles used by the SAT strategy.
    pub paper_p: usize,
    /// Paper: steps used by the SAT strategy.
    pub paper_k: usize,
}

/// All 20 rows of Table I (9 `H`-operator designs + 11 ISCAS circuits).
#[rustfmt::skip]
pub const TABLE1: [Table1Row; 20] = [
    Table1Row { name: "b2_m3", pi: 8, po: 8, nodes: 74, paper_p: 30, paper_k: 186 },
    Table1Row { name: "b3_m4", pi: 12, po: 12, nodes: 59, paper_p: 20, paper_k: 117 },
    Table1Row { name: "b4_m5", pi: 16, po: 16, nodes: 203, paper_p: 83, paper_k: 778 },
    Table1Row { name: "b5_m7", pi: 20, po: 20, nodes: 256, paper_p: 106, paper_k: 888 },
    Table1Row { name: "b6_m7", pi: 24, po: 24, nodes: 310, paper_p: 130, paper_k: 1132 },
    Table1Row { name: "b8_m7", pi: 32, po: 32, nodes: 422, paper_p: 187, paper_k: 1884 },
    Table1Row { name: "b10_m7", pi: 40, po: 40, nodes: 535, paper_p: 264, paper_k: 2938 },
    Table1Row { name: "b12_m7", pi: 48, po: 48, nodes: 646, paper_p: 331, paper_k: 4228 },
    Table1Row { name: "b16_m23", pi: 64, po: 64, nodes: 881, paper_p: 480, paper_k: 6218 },
    Table1Row { name: "c17", pi: 5, po: 2, nodes: 12, paper_p: 4, paper_k: 12 },
    Table1Row { name: "c432", pi: 36, po: 7, nodes: 208, paper_p: 60, paper_k: 685 },
    Table1Row { name: "c499", pi: 41, po: 32, nodes: 219, paper_p: 77, paper_k: 610 },
    Table1Row { name: "c880", pi: 60, po: 26, nodes: 334, paper_p: 82, paper_k: 1280 },
    Table1Row { name: "c1355", pi: 41, po: 32, nodes: 219, paper_p: 77, paper_k: 594 },
    Table1Row { name: "c1908", pi: 33, po: 25, nodes: 220, paper_p: 70, paper_k: 875 },
    Table1Row { name: "c2670", pi: 157, po: 63, nodes: 554, paper_p: 160, paper_k: 1948 },
    Table1Row { name: "c3540", pi: 50, po: 22, nodes: 856, paper_p: 416, paper_k: 5434 },
    Table1Row { name: "c5315", pi: 178, po: 123, nodes: 1257, paper_p: 498, paper_k: 7635 },
    Table1Row { name: "c6288", pi: 32, po: 32, nodes: 1011, paper_p: 640, paper_k: 10232 },
    Table1Row { name: "c7552", pi: 207, po: 108, nodes: 1151, paper_p: 540, paper_k: 7757 },
];

/// Materializes the DAG for a Table I row.
///
/// - `c17` is the real embedded netlist (collapsed to its 6 NAND gates);
/// - the other ISCAS rows use the deterministic proxy generator;
/// - `b*_m*` rows use the expanded `H` operator (see DESIGN.md §4).
pub fn table1_dag(row: &Table1Row) -> Dag {
    if row.name == "c17" {
        return parse_bench(revpebble::graph::data::C17_BENCH).expect("embedded c17 parses");
    }
    if row.name.starts_with('c') {
        iscas_proxy(
            ProxyShape {
                inputs: row.pi,
                outputs: row.po,
                nodes: row.nodes,
            },
            0xDA7E_2019,
        )
    } else {
        h_operator_sized(row.nodes)
    }
}

/// One measured benchmark entry destined for [`BENCH_sat.json`]
/// (see [`write_bench_json`]): wall-clock plus the SAT-solver counters
/// that make a perf trajectory auditable across PRs.
///
/// [`BENCH_sat.json`]: bench_json_path
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// The emitting bench target, e.g. `"minimize_incremental"`. Entries
    /// are replaced per bench: re-running one bench leaves the others'
    /// entries in the file untouched.
    pub bench: &'static str,
    /// Workload id within the bench, e.g. `"incremental/c17"`.
    pub id: String,
    /// Wall-clock seconds of one measured run.
    pub wall_s: f64,
    /// SAT propagations performed during the run.
    pub propagations: u64,
    /// SAT conflicts encountered during the run.
    pub conflicts: u64,
    /// Clause-arena garbage collections during the run.
    pub arena_gcs: u64,
    /// Clauses imported from the shared pool (0 for solo runs).
    pub imports: u64,
    /// Clauses exported to the shared pool (0 for solo runs).
    pub exports: u64,
    /// Pool clauses provably missed — lapped in a rival's export ring
    /// before the import pass reached them (0 for solo runs).
    pub dropped: u64,
    /// The pebble budget the run certified, when the workload is a
    /// minimize search (`None` for fixed-budget and pure-SAT benches).
    /// The gate's engine-ratio check uses it to decide whether two
    /// engines' walls are comparable: under a deterministic budget
    /// schedule, equal certified budgets mean equal probe walks.
    pub certified: Option<u64>,
}

impl BenchRecord {
    /// The entry as one JSON object on a single line. `bench` and `id`
    /// are code-controlled identifiers (no quotes/escapes needed).
    fn to_json_line(&self) -> String {
        let mut line = format!(
            "{{\"bench\":\"{}\",\"id\":\"{}\",\"wall_s\":{:.6},\"propagations\":{},\
             \"conflicts\":{},\"arena_gcs\":{},\"imports\":{},\"exports\":{},\"dropped\":{}",
            self.bench,
            self.id,
            self.wall_s,
            self.propagations,
            self.conflicts,
            self.arena_gcs,
            self.imports,
            self.exports,
            self.dropped
        );
        if let Some(certified) = self.certified {
            line.push_str(&format!(",\"certified\":{certified}"));
        }
        line.push('}');
        line
    }
}

/// Where `BENCH_sat.json` lives: `$BENCH_SAT_JSON` when set, otherwise
/// the workspace root (so `cargo bench` from anywhere updates the
/// committed baseline).
pub fn bench_json_path() -> std::path::PathBuf {
    std::env::var_os("BENCH_SAT_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sat.json")
        })
}

/// Writes `records` into the machine-readable `BENCH_sat.json` at `path`,
/// replacing any previous entries of the same `bench` and keeping every
/// other bench's entries. The file is line-oriented JSON — one entry
/// object per line inside a single `entries` array — so it can be both
/// `jq`-parsed and grepped.
pub fn write_bench_json(
    path: &std::path::Path,
    bench: &str,
    records: &[BenchRecord],
) -> std::io::Result<()> {
    let mut kept: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        let marker = format!("{{\"bench\":\"{bench}\"");
        for line in existing.lines() {
            let line = line.trim().trim_end_matches(',');
            if line.starts_with("{\"bench\":") && !line.starts_with(marker.as_str()) {
                kept.push(line.to_string());
            }
        }
    }
    kept.extend(records.iter().map(BenchRecord::to_json_line));
    let mut out = String::from("{ \"schema\": 1, \"entries\": [\n");
    for (index, line) in kept.iter().enumerate() {
        out.push_str(line);
        if index + 1 < kept.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("] }\n");
    std::fs::write(path, out)
}

/// [`write_bench_json`] at [`bench_json_path`], reporting (but not
/// failing on) IO errors — a read-only checkout must not break `cargo
/// bench`.
pub fn record_bench_json(bench: &'static str, records: &[BenchRecord]) {
    let path = bench_json_path();
    match write_bench_json(&path, bench, records) {
        Ok(()) => println!(
            "BENCH_sat.json: recorded {} {bench} entries at {}",
            records.len(),
            path.display()
        ),
        Err(err) => eprintln!("BENCH_sat.json: could not write {}: {err}", path.display()),
    }
}

/// One parsed `BENCH_sat.json` entry, keyed for baseline comparison.
///
/// The sharing counters are optional: entries written before the
/// lock-free pool (or by benches that never share) simply lack them, and
/// the parser tolerates *unknown* fields too, so future record shapes
/// don't break an older gate.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedBenchEntry {
    /// The emitting bench target.
    pub bench: String,
    /// Workload id within the bench.
    pub id: String,
    /// Wall-clock seconds of the recorded run.
    pub wall_s: f64,
    /// Clauses imported from the shared pool, when recorded.
    pub imports: Option<u64>,
    /// Clauses exported to the shared pool, when recorded.
    pub exports: Option<u64>,
    /// Pool clauses provably missed (ring overwrites), when recorded.
    pub dropped: Option<u64>,
    /// Certified pebble budget, when recorded (minimize workloads only).
    pub certified: Option<u64>,
}

/// Extracts the value of a string field from one JSON entry line.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts the value of a numeric field from one JSON entry line.
fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..]
        .find([',', '}'])
        .map(|i| i + start)
        .unwrap_or(line.len());
    line[start..end].trim().parse().ok()
}

/// Parses the line-oriented `BENCH_sat.json` format written by
/// [`write_bench_json`] — one entry object per line — without an external
/// JSON crate. Malformed lines are skipped; the regression gate treats a
/// file that yields no entries as an error.
pub fn parse_bench_json(text: &str) -> Vec<ParsedBenchEntry> {
    text.lines()
        .map(|line| line.trim().trim_end_matches(','))
        .filter(|line| line.starts_with("{\"bench\":"))
        .filter_map(|line| {
            Some(ParsedBenchEntry {
                bench: json_str_field(line, "bench")?,
                id: json_str_field(line, "id")?,
                wall_s: json_num_field(line, "wall_s")?,
                imports: json_num_field(line, "imports").map(|v| v as u64),
                exports: json_num_field(line, "exports").map(|v| v as u64),
                dropped: json_num_field(line, "dropped").map(|v| v as u64),
                certified: json_num_field(line, "certified").map(|v| v as u64),
            })
        })
        .collect()
}

/// One per-entry verdict of [`compare_bench_records`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDrift {
    /// `bench/id` of the compared entry.
    pub key: String,
    /// Baseline wall-clock seconds.
    pub baseline_s: f64,
    /// Freshly measured wall-clock seconds.
    pub fresh_s: f64,
    /// `fresh_s / baseline_s`.
    pub ratio: f64,
    /// `true` when the drift exceeds the gate's ratio.
    pub regressed: bool,
}

/// Compares freshly written bench records against the committed baseline:
/// an entry regresses when `fresh > max_ratio × baseline`. Entries whose
/// wall-clock is below `min_wall_s` on *both* sides are skipped — at
/// millisecond scale a 2× "drift" is scheduler noise, not a regression —
/// and entries present on only one side are skipped too (new or retired
/// benches are not regressions).
///
/// This is the engine of the `bench_gate` binary (see the crate docs for
/// the CI wiring and the `--update-baseline` escape hatch).
pub fn compare_bench_records(
    baseline: &[ParsedBenchEntry],
    fresh: &[ParsedBenchEntry],
    max_ratio: f64,
    min_wall_s: f64,
) -> Vec<BenchDrift> {
    fresh
        .iter()
        .filter_map(|entry| {
            let base = baseline
                .iter()
                .find(|b| b.bench == entry.bench && b.id == entry.id)?;
            if base.wall_s < min_wall_s && entry.wall_s < min_wall_s {
                return None;
            }
            let ratio = if base.wall_s > 0.0 {
                entry.wall_s / base.wall_s
            } else {
                f64::INFINITY
            };
            Some(BenchDrift {
                key: format!("{}/{}", entry.bench, entry.id),
                baseline_s: base.wall_s,
                fresh_s: entry.wall_s,
                ratio,
                regressed: ratio > max_ratio,
            })
        })
        .collect()
}

/// The `bench/id` keys of fresh entries with no baseline counterpart.
/// [`compare_bench_records`] deliberately skips these (a new bench is
/// not a regression), but skipping them *silently* would let a typo'd
/// baseline key disable a gate forever — `bench_gate` prints each one
/// as `new-bench (no baseline)` so the drop is visible in the CI log.
pub fn unmatched_fresh_keys(
    baseline: &[ParsedBenchEntry],
    fresh: &[ParsedBenchEntry],
) -> Vec<String> {
    fresh
        .iter()
        .filter(|entry| {
            !baseline
                .iter()
                .any(|b| b.bench == entry.bench && b.id == entry.id)
        })
        .map(|entry| format!("{}/{}", entry.bench, entry.id))
        .collect()
}

/// Compares the sharing counters of matched baseline/fresh entries:
/// a fresh run whose `imports` or `exports` collapsed to zero while the
/// baseline recorded a nonzero count means the cooperative layer silently
/// died (a pool wiring bug the wall-clock gate alone would miss — the
/// race still terminates, just without cooperation). Returns one message
/// per such collapse; entries lacking the counters on either side are
/// skipped (old baselines, solo benches).
pub fn compare_sharing_fields(
    baseline: &[ParsedBenchEntry],
    fresh: &[ParsedBenchEntry],
) -> Vec<String> {
    let mut problems = Vec::new();
    for entry in fresh {
        let Some(base) = baseline
            .iter()
            .find(|b| b.bench == entry.bench && b.id == entry.id)
        else {
            continue;
        };
        for (field, base_v, fresh_v) in [
            ("imports", base.imports, entry.imports),
            ("exports", base.exports, entry.exports),
        ] {
            if let (Some(b), Some(f)) = (base_v, fresh_v) {
                if b > 0 && f == 0 {
                    problems.push(format!(
                        "{}/{}: {field} collapsed {b} -> 0 (clause sharing died)",
                        entry.bench, entry.id
                    ));
                }
            }
        }
    }
    problems
}

/// The wall-clock speedup between two recorded worker scales of one
/// bench: `wall(low_id) / wall(high_id)`, i.e. how much faster the
/// `high_id` configuration ran. `None` when either entry is missing.
///
/// The `bench_gate` binary uses this on the `clause_sharing` scaling
/// records (`shared/b3_m4/workers2` … `workers16`) to catch the shared
/// portfolio flattening: the fresh 2-to-16-worker speedup must not fall
/// more than the gate's ratio below the committed baseline's.
pub fn scaling_speedup(
    entries: &[ParsedBenchEntry],
    bench: &str,
    low_id: &str,
    high_id: &str,
) -> Option<f64> {
    let wall = |id: &str| {
        entries
            .iter()
            .find(|e| e.bench == bench && e.id == id)
            .map(|e| e.wall_s)
    };
    let (low, high) = (wall(low_id)?, wall(high_id)?);
    (high > 0.0).then(|| low / high)
}

/// Verdict of [`paired_wall_ratio`]: how one engine's wall clock compares
/// to a rival's on the same workload.
#[derive(Debug, Clone, PartialEq)]
pub enum RatioVerdict {
    /// The two runs did different amounts of work (certified budgets
    /// differ, or one side is missing/unannotated): their walls are not
    /// comparable, and skipping is not a regression.
    Incomparable(String),
    /// Comparable runs, ratio within the allowed bound.
    Within {
        /// `numerator wall / denominator wall`.
        ratio: f64,
    },
    /// Comparable runs, ratio above the allowed bound.
    Exceeded {
        /// `numerator wall / denominator wall`.
        ratio: f64,
    },
}

/// Compares the wall clocks of two entries of one bench — e.g. the
/// incremental vs the fresh-per-probe minimize engine on `b3_m4` — but
/// only when the runs are *work-matched*: both entries must carry a
/// [`certified`](ParsedBenchEntry::certified) budget and the budgets must
/// be equal. Under a deterministic budget schedule, equal certified
/// budgets mean both engines walked the same probe sequence, so their
/// walls measure the same work; a timeout-bound run that certified a
/// *tighter* budget legitimately spent more wall on more probes, and
/// gating that as a regression would be noise.
///
/// The `bench_gate` binary uses this on the fresh `minimize_incremental`
/// records to enforce incremental ≤ `max_ratio` × fresh on `b3_m4`.
pub fn paired_wall_ratio(
    entries: &[ParsedBenchEntry],
    bench: &str,
    numerator_id: &str,
    denominator_id: &str,
    max_ratio: f64,
) -> RatioVerdict {
    let find = |id: &str| entries.iter().find(|e| e.bench == bench && e.id == id);
    let (Some(num), Some(den)) = (find(numerator_id), find(denominator_id)) else {
        return RatioVerdict::Incomparable(format!(
            "{bench}: {numerator_id} or {denominator_id} not recorded"
        ));
    };
    let (Some(num_certified), Some(den_certified)) = (num.certified, den.certified) else {
        return RatioVerdict::Incomparable(format!(
            "{bench}: certified budgets not recorded (old baseline shape)"
        ));
    };
    if num_certified != den_certified {
        return RatioVerdict::Incomparable(format!(
            "{bench}: certified budgets differ ({numerator_id} -> {num_certified}, \
             {denominator_id} -> {den_certified}): different probe walks"
        ));
    }
    if den.wall_s <= 0.0 {
        return RatioVerdict::Incomparable(format!("{bench}: {denominator_id} wall is zero"));
    }
    let ratio = num.wall_s / den.wall_s;
    if ratio > max_ratio {
        RatioVerdict::Exceeded { ratio }
    } else {
        RatioVerdict::Within { ratio }
    }
}

/// Parses `--flag value` style arguments; returns the value for `flag`.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses a numeric `--flag value` with a default.
pub fn arg_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    arg_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_materializes() {
        for row in TABLE1.iter().filter(|r| r.nodes <= 260) {
            let dag = table1_dag(row);
            assert!(dag.num_nodes() >= row.nodes.min(dag.num_nodes()));
            dag.validate_for_pebbling().expect(row.name);
        }
    }

    #[test]
    fn c17_row_uses_real_netlist() {
        let row = TABLE1.iter().find(|r| r.name == "c17").expect("present");
        let dag = table1_dag(row);
        assert_eq!(dag.num_inputs(), 5);
        assert_eq!(dag.num_outputs(), 2);
    }

    #[test]
    fn bench_json_merges_per_bench() {
        let path = std::env::temp_dir().join(format!(
            "revpebble_bench_json_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let record = |bench, id: &str, conflicts| BenchRecord {
            bench,
            id: id.to_string(),
            wall_s: 0.5,
            propagations: 100,
            conflicts,
            arena_gcs: 1,
            imports: 0,
            exports: 0,
            dropped: 0,
            certified: None,
        };
        write_bench_json(&path, "alpha", &[record("alpha", "a/1", 1)]).expect("write");
        write_bench_json(
            &path,
            "beta",
            &[record("beta", "b/1", 2), record("beta", "b/2", 3)],
        )
        .expect("write");
        // Re-recording `alpha` replaces its entry but keeps `beta`'s.
        write_bench_json(&path, "alpha", &[record("alpha", "a/2", 9)]).expect("write");
        let contents = std::fs::read_to_string(&path).expect("read");
        std::fs::remove_file(&path).ok();
        assert!(contents.starts_with("{ \"schema\": 1, \"entries\": ["));
        assert!(!contents.contains("\"id\":\"a/1\""), "{contents}");
        assert!(contents.contains("\"id\":\"a/2\""));
        assert!(contents.contains("\"id\":\"b/1\""));
        assert!(contents.contains("\"id\":\"b/2\""));
        assert_eq!(contents.matches("{\"bench\":").count(), 3);
        // Exactly one entry lacks the separating comma (the last).
        let entry_lines: Vec<&str> = contents
            .lines()
            .filter(|l| l.starts_with("{\"bench\":"))
            .collect();
        assert_eq!(entry_lines.iter().filter(|l| !l.ends_with(',')).count(), 1);
    }

    #[test]
    fn bench_json_round_trips_through_the_parser() {
        let path = std::env::temp_dir().join(format!(
            "revpebble_bench_gate_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let records = [
            BenchRecord {
                bench: "gate",
                id: "fast".to_string(),
                wall_s: 0.25,
                propagations: 10,
                conflicts: 1,
                arena_gcs: 0,
                imports: 7,
                exports: 3,
                dropped: 1,
                certified: Some(20),
            },
            BenchRecord {
                bench: "gate",
                id: "slow".to_string(),
                wall_s: 2.0,
                propagations: 99,
                conflicts: 9,
                arena_gcs: 1,
                imports: 0,
                exports: 0,
                dropped: 0,
                certified: None,
            },
        ];
        write_bench_json(&path, "gate", &records).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::remove_file(&path).ok();
        let parsed = parse_bench_json(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].bench, "gate");
        assert_eq!(parsed[0].id, "fast");
        assert!((parsed[0].wall_s - 0.25).abs() < 1e-9);
        assert!((parsed[1].wall_s - 2.0).abs() < 1e-9);
        assert_eq!(parsed[0].imports, Some(7));
        assert_eq!(parsed[0].exports, Some(3));
        assert_eq!(parsed[0].dropped, Some(1));
        assert_eq!(parsed[0].certified, Some(20));
        assert_eq!(parsed[1].certified, None, "unannotated entries stay None");
    }

    #[test]
    fn engine_ratio_gates_only_work_matched_runs() {
        let entry = |id: &str, wall_s, certified| ParsedBenchEntry {
            bench: "minimize_incremental".to_string(),
            id: id.to_string(),
            wall_s,
            imports: None,
            exports: None,
            dropped: None,
            certified,
        };
        let check = |entries: &[ParsedBenchEntry]| {
            paired_wall_ratio(
                entries,
                "minimize_incremental",
                "incremental/b3_m4",
                "fresh/b3_m4",
                1.25,
            )
        };
        // Same certified budget: walls are comparable, ratio gates.
        let matched = [
            entry("fresh/b3_m4", 6.0, Some(20)),
            entry("incremental/b3_m4", 6.6, Some(20)),
        ];
        assert!(
            matches!(check(&matched), RatioVerdict::Within { ratio } if (ratio - 1.1).abs() < 1e-9)
        );
        let regressed = [
            entry("fresh/b3_m4", 6.0, Some(20)),
            entry("incremental/b3_m4", 9.0, Some(20)),
        ];
        assert_eq!(check(&regressed), RatioVerdict::Exceeded { ratio: 1.5 });
        // A tighter certified budget bought with more wall is more work,
        // not a regression: incomparable, skipped.
        let deeper = [
            entry("fresh/b3_m4", 6.0, Some(21)),
            entry("incremental/b3_m4", 9.0, Some(18)),
        ];
        assert!(matches!(check(&deeper), RatioVerdict::Incomparable(_)));
        // Old baseline shape (no certified field): skipped.
        let unannotated = [
            entry("fresh/b3_m4", 6.0, None),
            entry("incremental/b3_m4", 9.0, None),
        ];
        assert!(matches!(check(&unannotated), RatioVerdict::Incomparable(_)));
        // Missing entries: skipped.
        assert!(matches!(
            check(&[entry("fresh/b3_m4", 6.0, Some(20))]),
            RatioVerdict::Incomparable(_)
        ));
    }

    #[test]
    fn parser_tolerates_unknown_and_missing_fields() {
        // Old-shape entry (no sharing counters) and a future-shape entry
        // (an unknown field) must both parse; the gate never breaks on a
        // record schema it predates or postdates.
        let text = concat!(
            "{ \"schema\": 1, \"entries\": [\n",
            "{\"bench\":\"old\",\"id\":\"a\",\"wall_s\":1.0,\"propagations\":5,",
            "\"conflicts\":2,\"arena_gcs\":0},\n",
            "{\"bench\":\"new\",\"id\":\"b\",\"wall_s\":2.0,\"propagations\":5,",
            "\"conflicts\":2,\"arena_gcs\":0,\"imports\":4,\"exports\":6,",
            "\"dropped\":0,\"mystery_field\":99}\n",
            "] }\n"
        );
        let parsed = parse_bench_json(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].imports, None, "old entries lack the counters");
        assert_eq!(parsed[1].imports, Some(4));
        assert_eq!(parsed[1].exports, Some(6));
        assert_eq!(parsed[1].dropped, Some(0));
    }

    #[test]
    fn sharing_collapse_is_flagged_and_absence_is_not() {
        let entry = |id: &str, imports: Option<u64>, exports: Option<u64>| ParsedBenchEntry {
            bench: "share".to_string(),
            id: id.to_string(),
            wall_s: 1.0,
            imports,
            exports,
            dropped: Some(0),
            certified: None,
        };
        let baseline = [
            entry("live", Some(100), Some(50)),
            entry("old", None, None),
            entry("solo", Some(0), Some(0)),
        ];
        let fresh = [
            entry("live", Some(0), Some(40)), // imports died: flagged
            entry("old", Some(9), Some(9)),   // baseline has no counters: skipped
            entry("solo", Some(0), Some(0)),  // zero on both sides: fine
        ];
        let problems = compare_sharing_fields(&baseline, &fresh);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("share/live"), "{}", problems[0]);
        assert!(problems[0].contains("imports"), "{}", problems[0]);
    }

    #[test]
    fn scaling_speedup_reads_the_worker_sweep() {
        let entry = |id: &str, wall_s| ParsedBenchEntry {
            bench: "clause_sharing".to_string(),
            id: id.to_string(),
            wall_s,
            imports: None,
            exports: None,
            dropped: None,
            certified: None,
        };
        let entries = [
            entry("shared/b3_m4/workers2", 8.0),
            entry("shared/b3_m4/workers16", 2.0),
        ];
        let speedup = scaling_speedup(
            &entries,
            "clause_sharing",
            "shared/b3_m4/workers2",
            "shared/b3_m4/workers16",
        );
        assert_eq!(speedup, Some(4.0));
        assert_eq!(
            scaling_speedup(&entries, "clause_sharing", "missing", "also-missing"),
            None
        );
    }

    #[test]
    fn bench_gate_flags_only_true_regressions() {
        let entry = |id: &str, wall_s| ParsedBenchEntry {
            bench: "b".to_string(),
            id: id.to_string(),
            wall_s,
            imports: None,
            exports: None,
            dropped: None,
            certified: None,
        };
        let baseline = [
            entry("steady", 1.0),
            entry("regressed", 1.0),
            entry("noise", 0.001),
            entry("retired", 1.0),
        ];
        let fresh = [
            entry("steady", 1.8),    // under 2x: fine
            entry("regressed", 2.5), // over 2x: flagged
            entry("noise", 0.004),   // 4x but under the noise floor
            entry("brand-new", 9.0), // no baseline: skipped
        ];
        let drifts = compare_bench_records(&baseline, &fresh, 2.0, 0.05);
        let regressed: Vec<&str> = drifts
            .iter()
            .filter(|d| d.regressed)
            .map(|d| d.key.as_str())
            .collect();
        assert_eq!(regressed, ["b/regressed"]);
        assert_eq!(drifts.len(), 2, "noise + unmatched entries are skipped");
        assert!(drifts.iter().all(|d| d.key != "b/brand-new"));
        // The skipped fresh-only entry is still *named*, so bench_gate
        // can log it as `new-bench (no baseline)` instead of losing it.
        assert_eq!(unmatched_fresh_keys(&baseline, &fresh), ["b/brand-new"]);
        assert!(unmatched_fresh_keys(&baseline, &baseline[..3]).is_empty());
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--timeout", "5", "--rows", "c17"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_num(&args, "--timeout", 0u64), 5);
        assert_eq!(arg_value(&args, "--rows").as_deref(), Some("c17"));
        assert_eq!(arg_num(&args, "--missing", 7u64), 7);
    }
}
