//! Shared helpers for the `revpebble-bench` binaries and criterion
//! benches: the Table I workload definitions and a tiny CLI-argument
//! parser (no external dependencies).
//!
//! # Example
//!
//! ```
//! use revpebble_bench::{table1_dag, TABLE1};
//!
//! // Materialize the smallest ISCAS row of the paper's Table I.
//! let row = TABLE1.iter().find(|r| r.name == "c17").expect("present");
//! let dag = table1_dag(row);
//! assert_eq!(dag.num_inputs(), row.pi);
//! assert_eq!(dag.num_outputs(), row.po);
//! dag.validate_for_pebbling().expect("ready for the pebbling game");
//! ```

#![warn(missing_docs)]

use revpebble::graph::generators::{iscas_proxy, ProxyShape};
use revpebble::graph::slp::h_operator_sized;
use revpebble::graph::{parse_bench, Dag};

/// One row of the paper's Table I: the published design shape plus the
/// paper's measured values for reference printing.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// Design name as printed in the paper.
    pub name: &'static str,
    /// Primary inputs (paper's `pi`).
    pub pi: usize,
    /// Primary outputs (paper's `po`).
    pub po: usize,
    /// DAG nodes.
    pub nodes: usize,
    /// Paper: pebbles used by the SAT strategy.
    pub paper_p: usize,
    /// Paper: steps used by the SAT strategy.
    pub paper_k: usize,
}

/// All 20 rows of Table I (9 `H`-operator designs + 11 ISCAS circuits).
#[rustfmt::skip]
pub const TABLE1: [Table1Row; 20] = [
    Table1Row { name: "b2_m3", pi: 8, po: 8, nodes: 74, paper_p: 30, paper_k: 186 },
    Table1Row { name: "b3_m4", pi: 12, po: 12, nodes: 59, paper_p: 20, paper_k: 117 },
    Table1Row { name: "b4_m5", pi: 16, po: 16, nodes: 203, paper_p: 83, paper_k: 778 },
    Table1Row { name: "b5_m7", pi: 20, po: 20, nodes: 256, paper_p: 106, paper_k: 888 },
    Table1Row { name: "b6_m7", pi: 24, po: 24, nodes: 310, paper_p: 130, paper_k: 1132 },
    Table1Row { name: "b8_m7", pi: 32, po: 32, nodes: 422, paper_p: 187, paper_k: 1884 },
    Table1Row { name: "b10_m7", pi: 40, po: 40, nodes: 535, paper_p: 264, paper_k: 2938 },
    Table1Row { name: "b12_m7", pi: 48, po: 48, nodes: 646, paper_p: 331, paper_k: 4228 },
    Table1Row { name: "b16_m23", pi: 64, po: 64, nodes: 881, paper_p: 480, paper_k: 6218 },
    Table1Row { name: "c17", pi: 5, po: 2, nodes: 12, paper_p: 4, paper_k: 12 },
    Table1Row { name: "c432", pi: 36, po: 7, nodes: 208, paper_p: 60, paper_k: 685 },
    Table1Row { name: "c499", pi: 41, po: 32, nodes: 219, paper_p: 77, paper_k: 610 },
    Table1Row { name: "c880", pi: 60, po: 26, nodes: 334, paper_p: 82, paper_k: 1280 },
    Table1Row { name: "c1355", pi: 41, po: 32, nodes: 219, paper_p: 77, paper_k: 594 },
    Table1Row { name: "c1908", pi: 33, po: 25, nodes: 220, paper_p: 70, paper_k: 875 },
    Table1Row { name: "c2670", pi: 157, po: 63, nodes: 554, paper_p: 160, paper_k: 1948 },
    Table1Row { name: "c3540", pi: 50, po: 22, nodes: 856, paper_p: 416, paper_k: 5434 },
    Table1Row { name: "c5315", pi: 178, po: 123, nodes: 1257, paper_p: 498, paper_k: 7635 },
    Table1Row { name: "c6288", pi: 32, po: 32, nodes: 1011, paper_p: 640, paper_k: 10232 },
    Table1Row { name: "c7552", pi: 207, po: 108, nodes: 1151, paper_p: 540, paper_k: 7757 },
];

/// Materializes the DAG for a Table I row.
///
/// - `c17` is the real embedded netlist (collapsed to its 6 NAND gates);
/// - the other ISCAS rows use the deterministic proxy generator;
/// - `b*_m*` rows use the expanded `H` operator (see DESIGN.md §4).
pub fn table1_dag(row: &Table1Row) -> Dag {
    if row.name == "c17" {
        return parse_bench(revpebble::graph::data::C17_BENCH).expect("embedded c17 parses");
    }
    if row.name.starts_with('c') {
        iscas_proxy(
            ProxyShape {
                inputs: row.pi,
                outputs: row.po,
                nodes: row.nodes,
            },
            0xDA7E_2019,
        )
    } else {
        h_operator_sized(row.nodes)
    }
}

/// Parses `--flag value` style arguments; returns the value for `flag`.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses a numeric `--flag value` with a default.
pub fn arg_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    arg_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_materializes() {
        for row in TABLE1.iter().filter(|r| r.nodes <= 260) {
            let dag = table1_dag(row);
            assert!(dag.num_nodes() >= row.nodes.min(dag.num_nodes()));
            dag.validate_for_pebbling().expect(row.name);
        }
    }

    #[test]
    fn c17_row_uses_real_netlist() {
        let row = TABLE1.iter().find(|r| r.name == "c17").expect("present");
        let dag = table1_dag(row);
        assert_eq!(dag.num_inputs(), 5);
        assert_eq!(dag.num_outputs(), 2);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--timeout", "5", "--rows", "c17"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_num(&args, "--timeout", 0u64), 5);
        assert_eq!(arg_value(&args, "--rows").as_deref(), Some("c17"));
        assert_eq!(arg_num(&args, "--missing", 7u64), 7);
    }
}
