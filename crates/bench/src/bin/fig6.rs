//! Regenerates the paper's **Fig. 6**: mapping a 9-input AND oracle onto
//! a 16-qubit device, comparing Bennett, Barenco and SAT pebbling.
//!
//! Usage: cargo run --release -p revpebble-bench --bin fig6

use revpebble::circuit::barenco;
use revpebble::circuit::compile::{compile, verify, VerifyOutcome};
use revpebble::core::baselines::bennett;
use revpebble::core::PebblingSession;
use revpebble::graph::generators::and_tree;

fn main() {
    let dag = and_tree(9);
    println!("# Fig. 6 reproduction: 9-input AND on a 16-qubit device");
    println!("# DAG: {dag}");
    println!(
        "# {:<24} {:>7} {:>7} {:>10}   paper",
        "method", "qubits", "gates", "fits 16q"
    );

    let naive = compile(&dag, &bennett(&dag)).expect("compiles");
    println!(
        "  {:<24} {:>7} {:>7} {:>10}   17 qubits, 15 gates",
        "Bennett (6b)",
        naive.circuit.width(),
        naive.circuit.num_gates(),
        fits(naive.circuit.width())
    );

    let barenco_qubits = 11;
    let barenco_gates = barenco::one_ancilla_gate_count(9);
    println!(
        "  {:<24} {:>7} {:>7} {:>10}   11 qubits, 48 gates",
        "Barenco (6d)",
        barenco_qubits,
        barenco_gates,
        fits(barenco_qubits)
    );

    let budget = 16 - dag.num_inputs();
    let strategy = PebblingSession::new(&dag)
        .pebbles(budget)
        .run()
        .expect("a valid configuration")
        .into_strategy()
        .expect("7 pebbles suffice");
    let compiled = compile(&dag, &strategy).expect("compiles");
    println!(
        "  {:<24} {:>7} {:>7} {:>10}   16 qubits, 23 gates",
        "SAT pebbling (6c)",
        compiled.circuit.width(),
        compiled.circuit.num_gates(),
        fits(compiled.circuit.width())
    );

    println!("\nConstrained pebbling grid:");
    println!("{}", strategy.render_grid(&dag));
    match verify(&dag, &compiled) {
        VerifyOutcome::Correct { patterns } => {
            println!("Verified on all {patterns} input patterns (outputs + clean ancillae).");
        }
        bad => println!("VERIFICATION FAILED: {bad:?}"),
    }
}

fn fits(qubits: usize) -> &'static str {
    if qubits <= 16 {
        "yes"
    } else {
        "no"
    }
}
