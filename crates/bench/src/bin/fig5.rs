//! Regenerates the paper's **Fig. 5**: pebbling an elliptic-curve
//! straight-line program (a Kummer-surface ladder step standing in for
//! the Bos et al. point addition — DESIGN.md §4) with a shrinking pebble
//! budget, reporting per-class operation counts and the memory profile.
//!
//! Usage:
//!   cargo run --release -p revpebble-bench --bin fig5 -- \
//!       [--timeout SECS] [--budgets 24,20,16,12,10] [--grid]

use std::time::Duration;

use revpebble::core::baselines::bennett;
use revpebble::core::{EncodingOptions, MoveMode, PebbleOutcome, PebbleSolver, SolverOptions};
use revpebble::graph::slp::kummer_ladder_step;
use revpebble::graph::Op;
use revpebble_bench::{arg_num, arg_value};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let timeout = Duration::from_secs(arg_num(&args, "--timeout", 60u64));
    // The paper sweeps 24…10 pebbles on its (smaller) Bos et al. program;
    // our Kummer ladder step has 56 nodes and 8 outputs, so its feasible
    // band sits higher — the default sweep ends at 18, the tightest budget
    // our CDCL solver certifies within laptop-scale timeouts.
    let budgets: Vec<usize> = arg_value(&args, "--budgets")
        .map(|v| v.split(',').filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_else(|| vec![32, 28, 24, 20, 18]);
    let show_grid = args.iter().any(|a| a == "--grid");

    let dag = kummer_ladder_step().to_dag().expect("valid SLP");
    println!("# Fig. 5 reproduction: Kummer ladder step ({dag})");
    let naive = bennett(&dag);
    println!(
        "# Bennett: {} pebbles, {} operations",
        naive.max_pebbles(&dag),
        naive.num_moves()
    );
    println!(
        "# {:>7} {:>6} {:>5} {:>5} {:>5} {:>5} {:>6}  memory profile",
        "pebbles", "steps", "Add", "Sub", "Sqr", "Mul", "total"
    );

    for budget in budgets {
        // Parallel moves (the paper's own clause set) plus the
        // exponential-refine schedule keep the queries on the easy,
        // satisfiable side; gates are counted as moves either way.
        let options = SolverOptions {
            encoding: EncodingOptions {
                max_pebbles: Some(budget),
                move_mode: MoveMode::Parallel,
                ..EncodingOptions::default()
            },
            schedule: revpebble::core::StepSchedule::ExponentialRefine,
            max_steps: 2048,
            timeout: Some(timeout),
            ..SolverOptions::default()
        };
        match PebbleSolver::new(&dag, options).solve() {
            PebbleOutcome::Solved(parallel) => {
                parallel.validate(&dag, Some(budget)).expect("valid");
                let strategy = parallel.sequentialize();
                strategy.validate(&dag, Some(budget)).expect("still valid");
                let counts = strategy.op_counts(&dag);
                let get = |op: Op| counts.get(&op).copied().unwrap_or(0);
                let profile = strategy.pebble_profile(&dag);
                let spark: String = profile
                    .iter()
                    .map(|&p| {
                        if p == 0 {
                            '_'
                        } else {
                            char::from_digit((p % 10) as u32, 10).expect("digit")
                        }
                    })
                    .collect();
                println!(
                    "  {budget:>7} {:>6} {:>5} {:>5} {:>5} {:>5} {:>6}  {spark}",
                    strategy.num_steps(),
                    get(Op::Add),
                    get(Op::Sub),
                    get(Op::Sqr),
                    get(Op::Mul),
                    strategy.num_moves()
                );
                if show_grid {
                    println!("{}", strategy.render_grid(&dag));
                }
            }
            PebbleOutcome::Infeasible { lower_bound } => {
                println!("  {budget:>7} infeasible (lower bound {lower_bound})");
            }
            PebbleOutcome::Timeout { steps_reached } => {
                println!("  {budget:>7} timeout at K = {steps_reached}");
            }
            PebbleOutcome::StepLimit { steps_checked } => {
                println!("  {budget:>7} exhausted step cap {steps_checked}");
            }
        }
    }
    println!("\n# Paper (Bos et al. program): 24→74 ops, 20→98, 16→82, 12→90, 10→110 ops;");
    println!("# expected shape: operation counts grow as the budget shrinks.");
}
