//! Regenerates the paper's **Fig. 3 / Fig. 4**: the running example DAG
//! pebbled by (a) the Bennett strategy and (b) the space-optimized SAT
//! strategy, printed as pebbling grids, plus the full pebble/step
//! trade-off frontier for this DAG.
//!
//! Usage: cargo run --release -p revpebble-bench --bin fig34

use revpebble::core::baselines::bennett;
use revpebble::core::PebblingSession;
use revpebble::graph::generators::paper_example;

fn main() {
    let dag = paper_example();
    println!("# Fig. 3/4 reproduction: the running example ({dag})");

    let naive = bennett(&dag);
    println!(
        "\nBennett strategy — {} pebbles, {} steps (paper: 6 pebbles, 10 steps):",
        naive.max_pebbles(&dag),
        naive.num_steps()
    );
    println!("{}", naive.render_grid(&dag));

    let report = PebblingSession::new(&dag)
        .pebbles(4)
        .run()
        .expect("a valid configuration");
    match report.into_strategy() {
        Some(strategy) => {
            println!(
                "SAT strategy with 4 pebbles — {} steps (paper's Fig. 4 shows 14; 12 is optimal):",
                strategy.num_steps()
            );
            println!("{}", strategy.render_grid(&dag));
        }
        None => println!("unexpected: 4 pebbles should be feasible"),
    }

    println!("Trade-off frontier (minimum steps per pebble budget, exact BFS):");
    println!("  {:>7} {:>6}", "pebbles", "steps");
    for budget in 3..=6 {
        match revpebble::core::solve_exact(&dag, budget) {
            revpebble::core::ExactOutcome::Optimal(strategy) => {
                println!("  {budget:>7} {:>6}", strategy.num_steps());
            }
            revpebble::core::ExactOutcome::Infeasible => {
                println!("  {budget:>7} {:>6}", "infeasible");
            }
        }
    }

    // Cross-check: the SAT engine agrees with exhaustive search at P = 4.
    let cross_check = PebblingSession::new(&dag)
        .pebbles(4)
        .run()
        .expect("a valid configuration");
    match cross_check.into_strategy() {
        Some(strategy) => {
            println!(
                "\nSAT cross-check at P = 4: {} steps (matches BFS)",
                strategy.num_steps()
            );
        }
        None => println!("\nSAT cross-check failed"),
    }
}
