//! `bench_gate` — the `BENCH_sat.json` perf-regression gate.
//!
//! Compares freshly written bench records against the committed baseline
//! and fails (exit 1) when any entry's wall-clock drifted more than
//! `--max-ratio` (default 2.0) above its baseline. Entries below the
//! noise floor (`--min-wall`, default 0.05 s on both sides) and entries
//! present on only one side are skipped; fresh entries with no baseline
//! are named in the log as `new-bench (no baseline)` rather than
//! dropped silently.
//!
//! Beyond wall clock, the gate also fails when a clause-sharing counter
//! (`imports`/`exports`) that was nonzero in the baseline collapses to
//! zero, when the `clause_sharing` 2→16-worker scaling speedup falls
//! more than `--max-ratio` below the baseline's speedup, and when the
//! incremental minimize engine runs more than `--max-incremental-ratio`
//! (default 1.25) slower than the fresh-per-probe baseline on a
//! work-matched `b3_m4` run (equal certified budgets — see
//! [`paired_wall_ratio`]). These checks skip with a note when either
//! side lacks the relevant entries/fields, so old baselines keep gating.
//!
//! Usage:
//!   cargo run -p revpebble-bench --bin bench_gate -- \
//!       [--baseline PATH] [--fresh PATH] [--max-ratio R] [--min-wall S]
//!       [--max-incremental-ratio R] [--update-baseline]
//!
//! `--baseline` defaults to the committed workspace `BENCH_sat.json` —
//! deliberately *not* `$BENCH_SAT_JSON`, which CI points at the fresh
//! file while the benches run; `--fresh` is the file a
//! `BENCH_SAT_JSON=… cargo bench` run just wrote.
//!
//! `--update-baseline` is the escape hatch for deliberate perf changes:
//! instead of gating, it copies the fresh records over the baseline file
//! (commit the result). See the crate docs for the full workflow.

use std::path::PathBuf;
use std::process::ExitCode;

use revpebble_bench::{
    arg_value, compare_bench_records, compare_sharing_fields, paired_wall_ratio, parse_bench_json,
    scaling_speedup, unmatched_fresh_keys, RatioVerdict,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = arg_value(&args, "--baseline")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // The committed workspace baseline (not $BENCH_SAT_JSON: CI
            // points that at the fresh file while benches run).
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sat.json")
        });
    let fresh_path = arg_value(&args, "--fresh")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("fresh_BENCH_sat.json"));
    let max_ratio: f64 = arg_value(&args, "--max-ratio")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let min_wall: f64 = arg_value(&args, "--min-wall")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    let update_baseline = args.iter().any(|a| a == "--update-baseline");

    let fresh_text = match std::fs::read_to_string(&fresh_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!(
                "bench_gate: cannot read fresh {}: {err}",
                fresh_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let fresh = parse_bench_json(&fresh_text);
    if fresh.is_empty() {
        eprintln!(
            "bench_gate: {} contains no bench entries",
            fresh_path.display()
        );
        return ExitCode::FAILURE;
    }

    if update_baseline {
        // Escape hatch: adopt the fresh records as the new baseline.
        if let Err(err) = std::fs::copy(&fresh_path, &baseline_path) {
            eprintln!(
                "bench_gate: cannot update baseline {}: {err}",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "bench_gate: baseline {} updated from {} ({} entries) — commit it",
            baseline_path.display(),
            fresh_path.display(),
            fresh.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!(
                "bench_gate: cannot read baseline {}: {err}",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let baseline = parse_bench_json(&baseline_text);
    if baseline.is_empty() {
        eprintln!(
            "bench_gate: {} contains no bench entries",
            baseline_path.display()
        );
        return ExitCode::FAILURE;
    }

    let drifts = compare_bench_records(&baseline, &fresh, max_ratio, min_wall);
    println!(
        "bench_gate: {} fresh entries, {} compared against {} (max ratio {max_ratio}, \
         noise floor {min_wall}s)",
        fresh.len(),
        drifts.len(),
        baseline_path.display()
    );
    // Fresh entries without a baseline are exempt from gating (a new
    // bench is not a regression), but never silently: a typo'd baseline
    // key would otherwise disable its gate forever. Each one is named
    // so the next `--update-baseline` run is expected to adopt it.
    for key in unmatched_fresh_keys(&baseline, &fresh) {
        println!("  {key:<40} new-bench (no baseline)");
    }
    let mut regressions = 0;
    for drift in &drifts {
        let verdict = if drift.regressed { "REGRESSED" } else { "ok" };
        println!(
            "  {:<40} baseline {:>9.3}s fresh {:>9.3}s ratio {:>5.2}x  {verdict}",
            drift.key, drift.baseline_s, drift.fresh_s, drift.ratio
        );
        if drift.regressed {
            regressions += 1;
        }
    }
    if regressions > 0 {
        eprintln!(
            "bench_gate: {regressions} entr{} regressed more than {max_ratio}x; \
             if deliberate, re-record with --update-baseline and commit BENCH_sat.json",
            if regressions == 1 { "y" } else { "ies" }
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: no wall-clock regressions");

    // Clause-sharing health: a sharing counter that was alive in the
    // baseline (imports/exports > 0) must not collapse to zero — that
    // means the lock-free pool silently stopped moving clauses even if
    // the wall clock still looks fine.
    let collapses = compare_sharing_fields(&baseline, &fresh);
    for problem in &collapses {
        eprintln!("  SHARING {problem}");
    }
    if !collapses.is_empty() {
        eprintln!(
            "bench_gate: {} sharing counter{} collapsed to zero vs baseline",
            collapses.len(),
            if collapses.len() == 1 { "" } else { "s" }
        );
        return ExitCode::FAILURE;
    }

    // Worker-scaling health on the clause_sharing sweep: the fresh
    // 2→16-worker speedup may not fall more than `max_ratio` below the
    // baseline's. Absolute curve shapes are machine-dependent (core
    // counts differ), so the gate compares the *ratio of ratios*.
    const SCALE_BENCH: &str = "clause_sharing";
    const SCALE_LOW: &str = "shared/b3_m4/workers2";
    const SCALE_HIGH: &str = "shared/b3_m4/workers16";
    let baseline_speedup = scaling_speedup(&baseline, SCALE_BENCH, SCALE_LOW, SCALE_HIGH);
    let fresh_speedup = scaling_speedup(&fresh, SCALE_BENCH, SCALE_LOW, SCALE_HIGH);
    match (baseline_speedup, fresh_speedup) {
        (Some(base), Some(new)) => {
            println!(
                "bench_gate: {SCALE_BENCH} 2->16 worker speedup baseline {base:.2}x \
                 fresh {new:.2}x"
            );
            if new < base / max_ratio {
                eprintln!(
                    "bench_gate: worker scaling regressed — fresh speedup {new:.2}x is \
                     more than {max_ratio}x below baseline {base:.2}x"
                );
                return ExitCode::FAILURE;
            }
        }
        // One side lacks the sweep (old baseline, or a bench subset run):
        // nothing to compare, and that is not a regression.
        _ => println!("bench_gate: {SCALE_BENCH} scaling sweep absent on one side; skipped"),
    }

    // Incremental-engine overhead on the fresh `minimize_incremental`
    // records: the incremental engine may not run more than
    // `--max-incremental-ratio` (default 1.25) slower than the
    // fresh-per-probe baseline on `b3_m4`. The check only fires when
    // both engines certified the *same* budget — the workload is
    // timeout-bound, and a run that certified a tighter budget
    // legitimately spent its extra wall on more probes (see
    // `paired_wall_ratio`); incomparable runs are reported and skipped.
    let max_incremental: f64 = arg_value(&args, "--max-incremental-ratio")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.25);
    const INC_BENCH: &str = "minimize_incremental";
    const INC_ID: &str = "incremental/b3_m4";
    const FRESH_ID: &str = "fresh/b3_m4";
    match paired_wall_ratio(&fresh, INC_BENCH, INC_ID, FRESH_ID, max_incremental) {
        RatioVerdict::Within { ratio } => println!(
            "bench_gate: {INC_ID} ran {ratio:.2}x the {FRESH_ID} wall \
             (allowed {max_incremental}x)"
        ),
        RatioVerdict::Exceeded { ratio } => {
            eprintln!(
                "bench_gate: incremental engine regressed — {INC_ID} ran {ratio:.2}x \
                 the {FRESH_ID} wall on the same certified budget \
                 (allowed {max_incremental}x); check forget_stale_learnts hygiene"
            );
            return ExitCode::FAILURE;
        }
        RatioVerdict::Incomparable(reason) => {
            println!("bench_gate: incremental ratio check skipped — {reason}");
        }
    }

    println!("bench_gate: sharing counters, worker scaling, and engine ratios healthy");
    ExitCode::SUCCESS
}
