//! Regenerates the paper's **Table I**: Bennett vs SAT-based pebbling on
//! the `H`-operator designs and the ISCAS benchmarks.
//!
//! For every design the harness prints the Bennett pebble/step counts, the
//! smallest pebble budget the SAT search certifies within the per-query
//! timeout, the resulting step count, the runtime, the percentage pebble
//! reduction and the step multiplication factor — the same columns as the
//! paper — plus the paper's published `P`/`K` for side-by-side comparison.
//!
//! Usage:
//!   cargo run --release -p revpebble-bench --bin table1 -- \
//!       [--timeout SECS] [--max-nodes N] [--rows name1,name2] [--stride S]
//!       [--incremental] [--portfolio N]
//!
//! Defaults keep the run laptop-sized: `--timeout 5 --max-nodes 260`.
//! The paper's full setting is `--timeout 120 --max-nodes 100000`.
//!
//! The probes use the paper's fresh-solver-per-probe methodology so the
//! published-`P` comparison column stays apples-to-apples;
//! `--incremental` opts into the assumption-bounded single-instance
//! engine instead (usually certifies smaller budgets in the same
//! per-probe timeout — but that is *our* methodology, not the paper's).
//! `--portfolio N` goes further and routes every row through the
//! cooperative minimize engine: `N` incremental workers (0 = one per
//! core) racing budget schedules on one clause pool and one certified-
//! refutation blackboard, each worker reusing a single arena-backed
//! solver across all of its probes.

use std::time::{Duration, Instant};

use revpebble::core::baselines::bennett;
use revpebble::core::{
    BudgetSchedule, EncodingOptions, MoveMode, PebblingSession, SessionOutcome, ShareOptions,
    SolverOptions,
};
use revpebble_bench::{arg_num, arg_value, table1_dag, TABLE1};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let timeout = Duration::from_secs(arg_num(&args, "--timeout", 5u64));
    let max_nodes: usize = arg_num(&args, "--max-nodes", 260);
    let stride_override: usize = arg_num(&args, "--stride", 0);
    let incremental = args.iter().any(|a| a == "--incremental");
    let portfolio: Option<usize> = args
        .iter()
        .any(|a| a == "--portfolio")
        .then(|| arg_num(&args, "--portfolio", 0));
    let row_filter: Option<Vec<String>> =
        arg_value(&args, "--rows").map(|v| v.split(',').map(str::to_string).collect());

    println!(
        "# Table I reproduction (per-query timeout {timeout:?}, rows with <= {max_nodes} nodes, \
         {} probes)",
        match portfolio {
            Some(0) => "cooperative-portfolio (one worker per core)".to_string(),
            Some(n) => format!("cooperative-portfolio ({n} workers)"),
            None if incremental => "incremental".to_string(),
            None => "fresh-per-probe".to_string(),
        }
    );
    println!(
        "# {:<8} {:>4} {:>4} {:>6} | {:>7} {:>7} | {:>7} {:>7} {:>8} {:>7} {:>7} | {:>8} {:>8}",
        "design",
        "pi",
        "po",
        "nodes",
        "Ben P",
        "Ben K",
        "P",
        "K",
        "time[s]",
        "%P",
        "KxBen",
        "paper P",
        "paper K"
    );

    let mut reductions: Vec<f64> = Vec::new();
    let mut factors: Vec<f64> = Vec::new();
    for row in &TABLE1 {
        if let Some(filter) = &row_filter {
            if !filter.iter().any(|f| f == row.name) {
                continue;
            }
        } else if row.nodes > max_nodes {
            continue;
        }
        let dag = table1_dag(row);
        let naive = bennett(&dag);
        let bennett_p = naive.max_pebbles(&dag);
        let bennett_k = naive.num_steps();

        let n = dag.num_nodes();
        let stride = if stride_override > 0 {
            stride_override
        } else {
            (n / 16).max(1)
        };
        // Parallel moves (the paper's clause set) + exponential-refine
        // keep per-probe queries on the easy side; K is reported as the
        // number of moves (= gates), comparable with the paper's step
        // counts for sequential strategies.
        let base = SolverOptions {
            encoding: EncodingOptions {
                move_mode: MoveMode::Parallel,
                ..EncodingOptions::default()
            },
            schedule: revpebble::core::StepSchedule::ExponentialRefine,
            max_steps: 16 * n,
            step_stride: stride,
            ..SolverOptions::default()
        };
        let start = Instant::now();
        // One front door for both engines: every row constructs its
        // search through the `PebblingSession` builder, exactly like the
        // CLI and the library examples.
        let session = PebblingSession::new(&dag)
            .solver_options(base)
            .minimize()
            .per_query_timeout(timeout);
        let best = match portfolio {
            Some(workers) => {
                // Cooperative engine: incremental workers race budget
                // schedules on one shared clause pool + refutation
                // blackboard; each reuses one arena-backed solver for
                // every probe of its schedule.
                let report = session
                    .portfolio(workers)
                    .share_clauses(ShareOptions::default())
                    .run()
                    .expect("a valid Table I configuration");
                match report.outcome {
                    SessionOutcome::MinimizePortfolio(outcome) => outcome.best,
                    _ => unreachable!("a minimize portfolio ran"),
                }
            }
            None => {
                let report = session
                    .budget(BudgetSchedule::Descending {
                        stride: (n / 12).max(1),
                    })
                    .incremental(incremental)
                    .run()
                    .expect("a valid Table I configuration");
                match report.outcome {
                    SessionOutcome::Minimize(result) => result.best,
                    _ => unreachable!("a single-worker minimize ran"),
                }
            }
        };
        let elapsed = start.elapsed().as_secs_f64();
        match best {
            Some((p, strategy)) => {
                let k = strategy.num_moves();
                let reduction = 100.0 * (bennett_p - p) as f64 / bennett_p as f64;
                let factor = k as f64 / bennett_k as f64;
                reductions.push(reduction);
                factors.push(factor);
                println!(
                    "  {:<8} {:>4} {:>4} {:>6} | {:>7} {:>7} | {:>7} {:>7} {:>8.2} {:>6.1}% {:>6.2}x | {:>8} {:>8}",
                    row.name,
                    dag.num_inputs(),
                    dag.num_outputs(),
                    n,
                    bennett_p,
                    bennett_k,
                    p,
                    k,
                    elapsed,
                    reduction,
                    factor,
                    row.paper_p,
                    row.paper_k
                );
            }
            None => {
                println!(
                    "  {:<8} {:>4} {:>4} {:>6} | {:>7} {:>7} | no budget certified within timeout",
                    row.name,
                    dag.num_inputs(),
                    dag.num_outputs(),
                    n,
                    bennett_p,
                    bennett_k
                );
            }
        }
    }
    if !reductions.is_empty() {
        let avg_red: f64 = reductions.iter().sum::<f64>() / reductions.len() as f64;
        let avg_fac: f64 = factors.iter().sum::<f64>() / factors.len() as f64;
        println!("\nAverage percentage reduction of pebbles = {avg_red:.2} (paper: 52.77)");
        println!("Average multiplicative factor for steps  = {avg_fac:.2} (paper: 2.68)");
    }
}
