//! # revpebble
//!
//! **Reversible pebbling game for quantum memory management** — a
//! self-contained Rust reproduction of Meuli, Soeken, Roetteler, Bjørner
//! and De Micheli, DATE 2019 (arXiv:1904.02121).
//!
//! Quantum circuits may not discard intermediate values: every ancilla
//! must be *uncomputed* back to |0⟩ before the circuit ends, or garbage
//! entangles with the result. Scheduling when to compute and uncompute
//! each intermediate value under a qubit budget is exactly the
//! **reversible pebbling game** on the computation's dependency DAG. This
//! crate family solves the game with a SAT solver, exposing the
//! qubit/gate-count trade-off to the designer.
//!
//! This facade crate re-exports the whole public API:
//!
//! - [`sat`]: CDCL SAT solver + cardinality encodings (`revpebble-sat`);
//! - [`graph`]: DAGs, `.bench` netlists, straight-line programs,
//!   generators (`revpebble-graph`);
//! - [`core`]: the game, the SAT encoding, baselines and search loops
//!   (`revpebble-core`);
//! - [`circuit`]: strategy → reversible-circuit compilation, simulation
//!   and Barenco decompositions (`revpebble-circuit`).
//!
//! ## Quick start
//!
//! ```
//! use revpebble::prelude::*;
//!
//! // The paper's running example (Fig. 2): six operations, two outputs.
//! let dag = revpebble::graph::generators::paper_example();
//!
//! // Bennett's strategy needs one pebble (qubit) per node …
//! let naive = bennett(&dag);
//! assert_eq!(naive.max_pebbles(&dag), 6);
//!
//! // … the SAT solver fits the computation into 4 pebbles.
//! let tight = solve_with_pebbles(&dag, 4).into_strategy().expect("solvable");
//! tight.validate(&dag, Some(4)).expect("independent checker agrees");
//!
//! // And the compiled circuit provably restores every ancilla.
//! let compiled = compile(&dag, &tight).expect("compiles");
//! assert!(matches!(verify(&dag, &compiled), VerifyOutcome::Correct { .. }));
//! ```
//!
//! ## Portfolio solving
//!
//! No single solver configuration dominates: deepening schedule, move
//! semantics and cardinality encoding each win on some instances and
//! lose on others. On a multi-core machine,
//! [`PortfolioSolver`](core::PortfolioSolver) races several
//! configurations on worker threads and cancels the losers the moment
//! one finds a strategy:
//!
//! ```
//! use revpebble::prelude::*;
//!
//! let dag = revpebble::graph::generators::paper_example();
//! // Race two configurations; first strategy found wins.
//! let result = solve_with_pebbles_portfolio(&dag, 4, 2);
//! println!("won by: {}", result.winning_report().expect("winner").describe());
//! let strategy = result.outcome.into_strategy().expect("solvable");
//! strategy.validate(&dag, Some(4)).expect("still within 4 pebbles");
//! ```
//!
//! ## Cooperative minimize races
//!
//! [`minimize_portfolio_shared`](core::minimize_portfolio_shared) goes a
//! step further: its workers don't just race, they *cooperate*. Every
//! worker exports its short learnt clauses into a
//! [`SharedClausePool`](sat::SharedClausePool) and imports rivals'
//! clauses at restart boundaries, and certified refutations — including
//! budget-independent ones derived from unsat cores — land on one
//! [`SharedSearchState`](core::SharedSearchState) blackboard, so each
//! worker prunes with everything any rival has proven:
//!
//! ```
//! use std::time::Duration;
//! use revpebble::prelude::*;
//!
//! let dag = revpebble::graph::generators::paper_example();
//! let base = SolverOptions { max_steps: 60, ..SolverOptions::default() };
//! let race = minimize_portfolio_shared(&dag, base, Duration::from_secs(30), 2);
//! let (p, strategy) = race.best.expect("feasible");
//! assert_eq!(p, 4);
//! strategy.validate(&dag, Some(4)).expect("valid");
//! // The exhausted budget-3 probe certifies the floor: 4 is optimal.
//! assert!(race.sharing.floor <= p);
//! ```

#![deny(missing_docs)]

pub use revpebble_circuit as circuit;
pub use revpebble_core as core;
pub use revpebble_graph as graph;
pub use revpebble_sat as sat;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::circuit::{compile, verify, Circuit, CompiledCircuit, VerifyOutcome};
    pub use crate::core::baselines::{bennett, cone_wise};
    pub use crate::core::{
        minimize_pebbles, minimize_pebbles_fresh, minimize_portfolio, minimize_portfolio_shared,
        solve_with_pebbles, solve_with_pebbles_portfolio, BudgetSchedule, CardEncoding,
        EncodingOptions, MinimizeResult, Move, MoveMode, PebbleOutcome, PebbleSolver,
        PortfolioOutcome, PortfolioSolver, ShareOptions, SharedClausePool, SharedSearchState,
        SolverOptions, Strategy,
    };
    pub use crate::graph::{parse_bench, Dag, NodeId, Op, Slp, Source};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        let dag = crate::graph::generators::paper_example();
        assert_eq!(dag.num_nodes(), 6);
        let strategy = crate::core::baselines::bennett(&dag);
        assert!(strategy.validate(&dag, None).is_ok());
    }
}
