//! # revpebble
//!
//! **Reversible pebbling game for quantum memory management** — a
//! self-contained Rust reproduction of Meuli, Soeken, Roetteler, Bjørner
//! and De Micheli, DATE 2019 (arXiv:1904.02121).
//!
//! Quantum circuits may not discard intermediate values: every ancilla
//! must be *uncomputed* back to |0⟩ before the circuit ends, or garbage
//! entangles with the result. Scheduling when to compute and uncompute
//! each intermediate value under a qubit budget is exactly the
//! **reversible pebbling game** on the computation's dependency DAG. This
//! crate family solves the game with a SAT solver, exposing the
//! qubit/gate-count trade-off to the designer.
//!
//! This facade crate re-exports the whole public API:
//!
//! - [`sat`]: CDCL SAT solver + cardinality encodings (`revpebble-sat`);
//! - [`graph`]: DAGs, `.bench` netlists, straight-line programs,
//!   generators (`revpebble-graph`);
//! - [`core`]: the game, the SAT encoding, baselines, search loops and
//!   the [`PebblingSession`](core::PebblingSession) front door
//!   (`revpebble-core`);
//! - [`circuit`]: strategy → reversible-circuit compilation, simulation
//!   and Barenco decompositions (`revpebble-circuit`).
//!
//! ## Quick start: one front door
//!
//! Every engine — fixed-budget solving, budget minimization, racing
//! portfolios, cooperative clause-sharing portfolios, the trade-off
//! frontier — is reached through one builder,
//! [`PebblingSession`](core::PebblingSession):
//!
//! ```
//! use revpebble::prelude::*;
//!
//! // The paper's running example (Fig. 2): six operations, two outputs.
//! let dag = revpebble::graph::generators::paper_example();
//!
//! // Bennett's strategy needs one pebble (qubit) per node …
//! let naive = bennett(&dag);
//! assert_eq!(naive.max_pebbles(&dag), 6);
//!
//! // … the SAT solver fits the computation into 4 pebbles.
//! let report = PebblingSession::new(&dag).pebbles(4).run().expect("valid");
//! let tight = report.into_strategy().expect("solvable");
//! tight.validate(&dag, Some(4)).expect("independent checker agrees");
//!
//! // And the compiled circuit provably restores every ancilla.
//! let compiled = compile(&dag, &tight).expect("compiles");
//! assert!(matches!(verify(&dag, &compiled), VerifyOutcome::Correct { .. }));
//! ```
//!
//! Invalid configurations never reach a solver: the builder validates at
//! plan time and returns a typed [`SessionError`](core::SessionError):
//!
//! ```
//! use revpebble::prelude::*;
//!
//! let dag = revpebble::graph::generators::paper_example();
//! // Clause sharing needs a minimize portfolio to share within.
//! let err = PebblingSession::new(&dag)
//!     .minimize()
//!     .share_clauses(ShareOptions::default())
//!     .run()
//!     .expect_err("rejected at plan time");
//! assert_eq!(err, SessionError::ShareClausesWithoutPortfolio);
//! ```
//!
//! ## Finding the smallest budget, cooperatively
//!
//! A minimize session races portfolio workers over budget schedules;
//! with [`share_clauses`](core::PebblingSession::share_clauses) they
//! exchange short learnt clauses through a
//! [`SharedClausePool`](sat::SharedClausePool) and pool certified
//! refutations — including budget-independent ones derived from unsat
//! cores — on one [`SharedSearchState`](core::SharedSearchState)
//! blackboard. Progress streams out as
//! [`ProbeEvent`](core::ProbeEvent)s:
//!
//! ```
//! use std::sync::{Arc, Mutex};
//! use std::time::Duration;
//! use revpebble::prelude::*;
//!
//! let dag = revpebble::graph::generators::paper_example();
//! // The observer is `Send + 'static` (sessions can run on a shared
//! // worker pool), so collect events through an Arc.
//! let trace = Arc::new(Mutex::new(Vec::new()));
//! let sink = Arc::clone(&trace);
//! let report = PebblingSession::new(&dag)
//!     .minimize()
//!     .portfolio(2)
//!     .share_clauses(ShareOptions::default())
//!     .max_steps(60)
//!     .per_query_timeout(Duration::from_secs(30))
//!     .on_event(move |event| sink.lock().unwrap().push(event))
//!     .run()
//!     .expect("valid");
//! assert_eq!(report.minimum, Some(4));
//! // The exhausted budget-3 probe certifies the floor: 4 is optimal.
//! assert!(report.floor <= 4);
//! // The terminal event arrives exactly once, after every worker.
//! assert!(matches!(
//!     trace.lock().unwrap().last(),
//!     Some(ProbeEvent::BudgetCertified { minimum: Some(4) })
//! ));
//! ```
//!
//! ## Serving many sessions
//!
//! Sessions are first-class jobs: hand one to a shared
//! [`Executor`](core::Executor) with
//! [`spawn_on`](core::PebblingSession::spawn_on) and poll or cancel the
//! returned [`SessionHandle`](core::SessionHandle), or serve a whole
//! workload through a [`BatchSession`](core::BatchSession) — one worker
//! pool, per-session conflict quotas, and a shared
//! [`ResultCache`](core::ResultCache) keyed by canonical DAG fingerprint
//! so repeated instances skip the solver:
//!
//! ```
//! use revpebble::prelude::*;
//!
//! let dag = revpebble::graph::generators::paper_example();
//! let mut batch = BatchSession::new(2)
//!     .expect("workers")
//!     .per_session_quota(5_000_000);
//! for name in ["first", "again"] {
//!     batch
//!         .submit(name, &dag, |session| session.pebbles(4))
//!         .expect("valid");
//! }
//! let report = batch.finish();
//! assert!(report.sessions.iter().all(|(_, r)| r.minimum == Some(4)));
//! ```

#![deny(missing_docs)]

pub use revpebble_circuit as circuit;
pub use revpebble_core as core;
pub use revpebble_graph as graph;
pub use revpebble_sat as sat;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::circuit::{compile, verify, Circuit, CompiledCircuit, VerifyOutcome};
    pub use crate::core::baselines::{bennett, cone_wise};
    pub use crate::core::{
        minimize, AdmitGuard, BatchReport, BatchSession, BudgetSchedule, CancelReason, CancelToken,
        CardEncoding, EncodingOptions, Engine, Executor, FaultKind, FaultPlan, FaultSite,
        Heartbeat, MinimizeResult, Move, MoveMode, PebbleOutcome, PebbleSolver, PebblingSession,
        PortfolioOutcome, PortfolioSolver, ProbeEvent, Report, ResultCache, RetryPolicy,
        SessionError, SessionHandle, SessionOutcome, SessionRuntime, ShareOptions,
        SharedClausePool, SharedSearchState, SolverOptions, StopReason, Strategy,
    };
    pub use crate::graph::{parse_bench, Dag, NodeId, Op, Slp, Source};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        let dag = crate::graph::generators::paper_example();
        assert_eq!(dag.num_nodes(), 6);
        let strategy = crate::core::baselines::bennett(&dag);
        assert!(strategy.validate(&dag, None).is_ok());
    }

    #[test]
    fn session_front_door_is_reachable_through_the_prelude() {
        use crate::prelude::*;
        let dag = crate::graph::generators::paper_example();
        let report = PebblingSession::new(&dag).pebbles(4).run().expect("valid");
        assert_eq!(report.engine, Engine::Single);
        assert_eq!(report.minimum, Some(4));
    }
}
