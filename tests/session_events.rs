//! `ProbeEvent` stream invariants of the `PebblingSession` front door:
//!
//! - within one worker, probe indices arrive monotone (non-decreasing,
//!   and strictly increasing across `ProbeStarted` events);
//! - every probe's started event precedes its resolution event;
//! - `BudgetCertified` is terminal: exactly one per session, delivered
//!   last — even for portfolio runs whose rivals are cancelled mid-probe;
//! - the callback sees exactly `events_emitted` events;
//! - a fired [`CancelToken`] ends the stream *without* a terminal event:
//!   a cancelled session never pretends to certify, and its report names
//!   the stop reason.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use revpebble::prelude::*;

fn collect(session: PebblingSession<'_>) -> (Report, Vec<ProbeEvent>) {
    let events: Arc<Mutex<Vec<ProbeEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    let report = session
        .on_event(move |event| sink.lock().expect("event sink").push(event))
        .run()
        .expect("a valid configuration");
    let events = events.lock().expect("event sink").clone();
    (report, events)
}

/// Shared invariants of every session's event stream.
fn assert_stream_invariants(report: &Report, events: &[ProbeEvent]) {
    assert_eq!(
        events.len() as u64,
        report.events_emitted,
        "the callback must see exactly the counted events"
    );
    // Exactly one terminal event, and it is last.
    let terminals = events
        .iter()
        .filter(|e| matches!(e, ProbeEvent::BudgetCertified { .. }))
        .count();
    assert_eq!(terminals, 1, "exactly one terminal event: {events:?}");
    assert!(
        matches!(events.last(), Some(ProbeEvent::BudgetCertified { .. })),
        "the terminal event must arrive last: {events:?}"
    );
    // Per-worker probe indices are monotone; started events strictly grow.
    let mut last_probe: HashMap<usize, usize> = HashMap::new();
    let mut last_started: HashMap<usize, usize> = HashMap::new();
    for event in events {
        let (worker, probe, started) = match *event {
            ProbeEvent::ProbeStarted { worker, probe, .. } => (worker, probe, true),
            ProbeEvent::ProbeSolved { worker, probe, .. }
            | ProbeEvent::ProbeRefuted { worker, probe, .. } => (worker, probe, false),
            _ => continue,
        };
        if let Some(&previous) = last_probe.get(&worker) {
            assert!(
                probe >= previous,
                "worker {worker}: probe index fell {previous} -> {probe}: {events:?}"
            );
        }
        last_probe.insert(worker, probe);
        if started {
            if let Some(&previous) = last_started.get(&worker) {
                assert!(
                    probe > previous,
                    "worker {worker}: ProbeStarted index must strictly grow: {events:?}"
                );
            }
            last_started.insert(worker, probe);
        } else {
            assert_eq!(
                last_started.get(&worker),
                Some(&probe),
                "worker {worker}: probe {probe} resolved without being started: {events:?}"
            );
        }
    }
}

#[test]
fn single_minimize_stream_is_monotone_and_terminal() {
    let dag = revpebble::graph::generators::paper_example();
    let (report, events) = collect(
        PebblingSession::new(&dag)
            .minimize()
            .max_steps(60)
            .per_query_timeout(Duration::from_secs(30)),
    );
    assert_stream_invariants(&report, &events);
    assert_eq!(report.minimum, Some(4));
    assert!(matches!(
        events.last(),
        Some(ProbeEvent::BudgetCertified { minimum: Some(4) })
    ));
    // The exhausted budget-3 probe raises the floor to the optimum; the
    // raise is observable in the stream.
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ProbeEvent::FloorRaised { floor: 4, .. })),
        "{events:?}"
    );
}

#[test]
fn shared_portfolio_emits_one_terminal_despite_cancelled_rivals() {
    let dag = revpebble::graph::generators::paper_example();
    let (report, events) = collect(
        PebblingSession::new(&dag)
            .minimize()
            .portfolio(4)
            .share_clauses(ShareOptions::default())
            .max_steps(60)
            .per_query_timeout(Duration::from_secs(30)),
    );
    assert_stream_invariants(&report, &events);
    assert_eq!(report.minimum, Some(4));
    // The race ran real rivals...
    let workers: std::collections::BTreeSet<usize> = events
        .iter()
        .filter_map(|e| match *e {
            ProbeEvent::ProbeStarted { worker, .. } => Some(worker),
            _ => None,
        })
        .collect();
    assert!(workers.len() >= 2, "several workers probed: {workers:?}");
    // ...whose sharing ticks carry the cooperative counters.
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ProbeEvent::ClauseSharingTick { .. })),
        "shared runs tick their sharing counters: {events:?}"
    );
}

#[test]
fn isolated_portfolio_and_fixed_budget_race_stay_terminal_once() {
    let dag = revpebble::graph::generators::paper_example();
    // Isolated minimize race (no sharing ticks expected).
    let (report, events) = collect(
        PebblingSession::new(&dag)
            .minimize()
            .portfolio(3)
            .max_steps(60)
            .per_query_timeout(Duration::from_secs(30)),
    );
    assert_stream_invariants(&report, &events);
    assert!(!events
        .iter()
        .any(|e| matches!(e, ProbeEvent::ClauseSharingTick { .. })));

    // Fixed-budget race: one probe per worker, one terminal for the lot.
    let (report, events) = collect(PebblingSession::new(&dag).pebbles(4).portfolio(4));
    assert_stream_invariants(&report, &events);
    assert_eq!(report.minimum, Some(4));
}

#[test]
fn a_token_fired_mid_probe_stops_promptly_without_certifying() {
    // `b3_m4` (the smallest H-operator bench instance) minimizes in
    // seconds of SAT time — plenty of mid-probe window. The callback
    // fires the session's own token at the first `ProbeStarted`, so the
    // cancellation lands while the solver is deep in a probe.
    let dag = revpebble::graph::slp::h_operator_sized(59);
    let token = CancelToken::new();
    let trigger = token.clone();
    let events: Arc<Mutex<Vec<ProbeEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    let start = std::time::Instant::now();
    let report = PebblingSession::new(&dag)
        .minimize()
        .incremental(true)
        .per_query_timeout(Duration::from_secs(120))
        .cancel_token(token)
        .on_event(move |event| {
            if matches!(event, ProbeEvent::ProbeStarted { .. }) {
                trigger.cancel();
            }
            sink.lock().expect("event sink").push(event);
        })
        .run()
        .expect("a valid configuration");
    let events = events.lock().expect("event sink").clone();

    // Prompt: the stop must land well inside the first probe, not after
    // the full multi-second minimize (let alone the per-query timeout).
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "cancellation took {:?}",
        start.elapsed()
    );
    assert_eq!(report.stop_reason, Some(StopReason::Cancelled));
    assert_eq!(
        report.minimum, None,
        "a cancelled session certifies nothing"
    );
    // No terminal event after a cancel: the stream just ends.
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, ProbeEvent::BudgetCertified { .. })),
        "no BudgetCertified after cancel: {events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ProbeEvent::ProbeStarted { .. })),
        "the cancellation was observed mid-probe: {events:?}"
    );
    assert_eq!(events.len() as u64, report.events_emitted);
}

#[test]
fn a_cancelled_handle_joins_to_a_partial_report() {
    let dag = revpebble::graph::slp::h_operator_sized(59);
    let executor = Arc::new(Executor::new(2));
    let handle = PebblingSession::new(&dag)
        .minimize()
        .incremental(true)
        .per_query_timeout(Duration::from_secs(120))
        .spawn_on(&executor)
        .expect("a valid configuration");
    handle.cancel();
    let report = handle.join();
    assert_eq!(report.stop_reason, Some(StopReason::Cancelled));
    assert_eq!(
        report.minimum, None,
        "a cancelled session certifies nothing"
    );
}

#[test]
fn frontier_stream_probes_descending_budgets() {
    let dag = revpebble::graph::generators::paper_example();
    let (report, events) = collect(
        PebblingSession::new(&dag)
            .sweep_frontier()
            .max_steps(60)
            .per_query_timeout(Duration::from_secs(30)),
    );
    assert_stream_invariants(&report, &events);
    let budgets: Vec<usize> = events
        .iter()
        .filter_map(|e| match *e {
            ProbeEvent::ProbeStarted { budget, .. } => Some(budget),
            _ => None,
        })
        .collect();
    assert!(
        budgets.windows(2).all(|w| w[0] > w[1]),
        "the sweep probes downward: {budgets:?}"
    );
}
