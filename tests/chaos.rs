//! Chaos suite for the fault-containment runtime: a deterministic
//! fail-point matrix (every site × {panic, delay, transient} × seeds)
//! plus the acceptance properties — a panicked worker of a cooperative
//! minimize race cannot change the certified minimum, a disabled
//! `FaultPlan` is invisible in the report, and the `SessionHandle`
//! watchdog detaches from a wedged session instead of blocking forever.
//!
//! Every session here must end in a *terminal* report: either a clean
//! certified one or a partial one whose `stop_reason` names the fault.
//! No cell may hang — CI wraps this suite in a hard `timeout`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use revpebble::graph::generators::{paper_example, random_dag};
use revpebble::prelude::*;
use revpebble::sat::SolverConfig;

/// Paper-example minimum (Figure 1 of Meuli et al.): the clean answer
/// every uninjured run must certify.
const PAPER_MINIMUM: usize = 4;

fn base_with(faults: FaultPlan) -> SolverOptions {
    SolverOptions {
        sat: SolverConfig {
            faults,
            ..SolverConfig::default()
        },
        // Decisive step cap (the paper example pebbles in 12 steps):
        // refutation probes exhaust a bounded range instead of the
        // 10_000-step default, keeping every matrix cell subsecond so
        // the full sweep fits CI's hard timeout.
        max_steps: 44,
        ..SolverOptions::default()
    }
}

/// One chaos cell: a spawned minimize session on the paper example with
/// `plan` armed, a result cache installed (so `cache.insert` is
/// visited) and probe retries enabled (so transients can recover).
fn chaos_session(plan: FaultPlan) -> Report {
    let dag = paper_example();
    let executor = Arc::new(Executor::new(2));
    PebblingSession::new(&dag)
        .solver_options(base_with(plan))
        .minimize()
        .retries(3)
        .result_cache(Arc::new(ResultCache::default()))
        .per_query_timeout(Duration::from_secs(30))
        .spawn_on(&executor)
        .expect("a valid configuration")
        .join()
}

fn assert_clean(report: &Report, label: &str) {
    assert_eq!(
        report.stop_reason, None,
        "{label}: expected a clean report, got {:?}",
        report.stop_reason
    );
    assert_eq!(
        report.minimum,
        Some(PAPER_MINIMUM),
        "{label}: clean run must certify the paper minimum"
    );
}

#[test]
fn every_fault_matrix_cell_ends_in_a_terminal_report() {
    // Debug builds sweep a reduced seed range: each cell is a full
    // minimize session, and unoptimized SAT solving makes the 120-cell
    // sweep take tens of minutes. The CI chaos job runs this suite
    // `--release`, where the full 0..8 sweep finishes in minutes.
    let seeds = if cfg!(debug_assertions) {
        0..3u64
    } else {
        0..8u64
    };
    for site in FaultSite::ALL {
        for kind in [FaultKind::Panic, FaultKind::Delay, FaultKind::Transient] {
            for seed in seeds.clone() {
                let plan = FaultPlan::inject_with_delay(
                    site,
                    kind,
                    seed,
                    // Short enough that delay cells stay cheap, long
                    // enough to land mid-solve.
                    Duration::from_millis(5),
                );
                let label = format!("{site}:{kind}:{seed}");
                let cell_started = Instant::now();
                let report = chaos_session(plan);
                eprintln!("cell {label}: {:?}", cell_started.elapsed());
                if plan.injected() == 0 {
                    // The seed outran the site's visit count (e.g. a
                    // short probe run never reached conflict #7): the
                    // arm never fired, so the run must be unhurt.
                    assert_clean(&report, &label);
                    continue;
                }
                match kind {
                    // A delay only costs wall-clock; the answer and the
                    // stop reason are untouched.
                    FaultKind::Delay => assert_clean(&report, &label),
                    // Transients recover through the retry policy —
                    // except at `exec.job`, where the whole session is
                    // the job and degradation cancels its own token.
                    FaultKind::Transient => {
                        if site == FaultSite::ExecJob {
                            assert_eq!(
                                report.stop_reason,
                                Some(StopReason::Cancelled),
                                "{label}: a transient session job degrades to cancellation"
                            );
                        } else {
                            assert_clean(&report, &label);
                        }
                    }
                    // A panic is contained into a partial report that
                    // names it — never an unwind, never a hang.
                    FaultKind::Panic => {
                        assert!(
                            matches!(report.stop_reason, Some(StopReason::WorkerPanicked { .. })),
                            "{label}: expected WorkerPanicked, got {:?}",
                            report.stop_reason
                        );
                        assert_eq!(
                            report.minimum, None,
                            "{label}: a single-worker panic certifies nothing"
                        );
                    }
                    _ => unreachable!("matrix covers panic/delay/transient"),
                }
            }
        }
    }
}

#[test]
fn a_spurious_cancel_of_a_probe_child_is_retried_not_fatal() {
    // `session.probe` arms a spurious cancellation of the probe's child
    // token. The session token never fired, so the retry loop treats
    // the cancellation as spurious and re-runs the probe.
    let plan = FaultPlan::inject(FaultSite::SessionProbe, FaultKind::SpuriousCancel, 0);
    let report = chaos_session(plan);
    assert_eq!(plan.injected(), 1, "the arm fired");
    assert_clean(&report, "session.probe:cancel:0");
    assert!(
        report.retries >= 1,
        "the spurious cancellation was retried: {report:?}"
    );
}

#[test]
fn a_batch_quarantines_its_panicked_session_while_the_rest_complete() {
    // The first session job panics on entry; its batch neighbor (and
    // the panicked entry's own report) must still arrive.
    let plan = FaultPlan::inject(FaultSite::ExecJob, FaultKind::Panic, 0);
    let dag = paper_example();
    let mut batch = BatchSession::new(1).expect("workers");
    for name in ["poisoned", "healthy"] {
        batch
            .submit(name, &dag, move |session| {
                session.solver_options(base_with(plan)).minimize()
            })
            .expect("valid configuration");
    }
    let report = batch.finish();
    assert_eq!(report.sessions.len(), 2);
    let (_, poisoned) = &report.sessions[0];
    let (_, healthy) = &report.sessions[1];
    assert!(
        matches!(
            poisoned.stop_reason,
            Some(StopReason::WorkerPanicked { .. })
        ),
        "{:?}",
        poisoned.stop_reason
    );
    assert_eq!(healthy.stop_reason, None);
    assert_eq!(healthy.minimum, Some(PAPER_MINIMUM));
}

#[test]
fn a_batch_retry_recovers_a_panicked_session() {
    // The arm fires on the first `exec.job` visit only; with a retry
    // budget the batch respawns the session, which then runs clean.
    let plan = FaultPlan::inject(FaultSite::ExecJob, FaultKind::Panic, 0);
    let dag = paper_example();
    let mut batch = BatchSession::new(1)
        .expect("workers")
        .retry_policy(RetryPolicy::attempts(3));
    batch
        .submit("recovers", &dag, move |session| {
            session.solver_options(base_with(plan)).minimize()
        })
        .expect("valid configuration");
    let report = batch.finish();
    let (_, session) = &report.sessions[0];
    assert_eq!(session.stop_reason, None, "{session:?}");
    assert_eq!(session.minimum, Some(PAPER_MINIMUM));
    assert_eq!(session.retries, 1, "exactly one respawn");
}

#[test]
fn the_watchdog_detaches_from_a_wedged_session() {
    // A 10s entry delay wedges the job before any solver runs (the
    // heartbeat never ticks). The session deadline fires at 50ms; after
    // the 100ms detach grace with a still heartbeat, join must return a
    // Detached placeholder instead of waiting out the sleep.
    let plan = FaultPlan::inject_with_delay(
        FaultSite::ExecJob,
        FaultKind::Delay,
        0,
        Duration::from_secs(10),
    );
    let dag = paper_example();
    let executor = Arc::new(Executor::new(1));
    let handle = PebblingSession::new(&dag)
        .solver_options(base_with(plan))
        .minimize()
        .cancel_token(CancelToken::with_limits(
            Some(Instant::now() + Duration::from_millis(50)),
            None,
        ))
        .spawn_on(&executor)
        .expect("a valid configuration")
        .detach_grace(Duration::from_millis(100));
    let joined_at = Instant::now();
    let report = handle.join();
    let waited = joined_at.elapsed();
    assert_eq!(report.stop_reason, Some(StopReason::Detached), "{report:?}");
    assert!(
        waited < Duration::from_secs(5),
        "join must not wait out the wedge: {waited:?}"
    );
    // The executor still holds the sleeping job; drop joins it after
    // the sleep — that is the price of detaching, paid at teardown,
    // not inside join.
}

/// Strips the timing-dependent fields from a report's JSON so runs can
/// be compared byte-for-byte. `queries`/`conflicts` vary run-to-run
/// even without faults — the solver polls wall-clock deadlines — so
/// they count as timing fields alongside the explicit clocks.
fn scrub_timings(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    loop {
        let next = [
            "\"elapsed_s\":",
            "\"wall_s\":",
            "\"queries\":",
            "\"conflicts\":",
        ]
        .iter()
        .filter_map(|key| rest.find(key).map(|at| (at, key.len())))
        .min();
        match next {
            Some((at, key_len)) => {
                out.push_str(&rest[..at + key_len]);
                rest = &rest[at + key_len..];
                let end = rest.find([',', '}']).unwrap_or(rest.len());
                out.push('0');
                rest = &rest[end..];
            }
            None => {
                out.push_str(rest);
                break;
            }
        }
    }
    out
}

#[test]
fn a_disabled_fault_plan_is_byte_invisible_in_the_report() {
    let dag = paper_example();
    let run = |faults: FaultPlan| {
        PebblingSession::new(&dag)
            .solver_options(base_with(faults))
            .minimize()
            .run()
            .expect("a valid configuration")
            .to_json()
    };
    let vanilla = run(FaultPlan::none());
    let disabled = run(FaultPlan::none());
    assert_eq!(
        scrub_timings(&vanilla),
        scrub_timings(&disabled),
        "FaultPlan::none() must be indistinguishable from no plan"
    );
    assert!(vanilla.contains("\"stop_reason\":null"), "{vanilla}");
    assert!(vanilla.contains("\"retries\":0"), "{vanilla}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The acceptance property: inject a panic into one worker of a
    /// 4-way shared-clause minimize race — the race must certify the
    /// same minimum as a fault-free single worker, with a clean
    /// stop_reason and exactly one failed worker row.
    #[test]
    fn a_panicked_race_worker_cannot_change_the_certified_minimum(
        victim in 0u64..4,
        inputs in 2usize..4,
        nodes in 4usize..10,
        seed in any::<u64>(),
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let decisive = SolverOptions {
            // Step caps above any optimum these little DAGs admit, so
            // probes end in certificates, never clock races.
            max_steps: 4 * dag.num_nodes() + 20,
            ..SolverOptions::default()
        };
        let baseline = PebblingSession::new(&dag)
            .solver_options(decisive)
            .minimize()
            .per_query_timeout(Duration::from_secs(60))
            .run()
            .expect("a valid configuration");
        prop_assert!(baseline.minimum.is_some(), "decisive regime certifies");

        // The `exec.job` arm fires on the victim-th worker job to
        // start — effectively a random member of the race.
        let faults = FaultPlan::inject(FaultSite::ExecJob, FaultKind::Panic, victim);
        let raced = PebblingSession::new(&dag)
            .solver_options(SolverOptions { sat: SolverConfig { faults, ..SolverConfig::default() }, ..decisive })
            .minimize()
            .portfolio(4)
            .share_clauses(ShareOptions::default())
            .per_query_timeout(Duration::from_secs(60))
            .executor(Arc::new(Executor::new(4)))
            .run()
            .expect("a valid configuration");

        prop_assert_eq!(faults.injected(), 1, "exactly one worker was killed");
        prop_assert_eq!(raced.minimum, baseline.minimum,
            "survivors must certify the fault-free minimum");
        prop_assert_eq!(raced.stop_reason, None);
        let failed = raced.workers.iter().filter(|w| w.failed).count();
        prop_assert_eq!(failed, 1, "exactly one failed worker row");
        prop_assert!(raced.workers.len() >= 4);
        prop_assert!(
            raced.workers.iter().all(|w| !w.failed || !w.winner),
            "a panicked worker cannot be the winner"
        );
    }
}
