//! Integration tests spanning all crates: DAG construction → SAT pebbling
//! → strategy validation → circuit compilation → simulation-based
//! verification.

use revpebble::graph::data::C17_BENCH;
use revpebble::graph::generators::{and_tree, chain, paper_example, random_dag};
use revpebble::graph::slp::{edwards_add_projective, h_operator};
use revpebble::prelude::*;

/// Solve, validate, compile and verify one DAG under a pebble budget.
/// Uses the exponential-refine schedule so boundary-hard instances stay
/// fast in CI; optimality is asserted elsewhere (`paper_claims`, `exact`).
fn pipeline(dag: &Dag, budget: usize) -> (Strategy, CompiledCircuit) {
    let options = revpebble::core::SolverOptions {
        encoding: revpebble::core::EncodingOptions {
            max_pebbles: Some(budget),
            ..Default::default()
        },
        schedule: revpebble::core::StepSchedule::ExponentialRefine,
        timeout: Some(std::time::Duration::from_secs(60)),
        ..Default::default()
    };
    let strategy = revpebble::core::PebbleSolver::new(dag, options)
        .solve()
        .into_strategy()
        .unwrap_or_else(|| panic!("budget {budget} should be feasible for {dag}"));
    strategy
        .validate(dag, Some(budget))
        .expect("solver strategies validate");
    let compiled = compile(dag, &strategy).expect("valid strategies compile");
    assert!(
        matches!(verify(dag, &compiled), VerifyOutcome::Correct { .. }),
        "compiled circuit must match DAG semantics with clean ancillae"
    );
    (strategy, compiled)
}

#[test]
fn paper_example_end_to_end() {
    let dag = paper_example();
    let (strategy, compiled) = pipeline(&dag, 4);
    assert_eq!(strategy.max_pebbles(&dag), 4);
    assert_eq!(compiled.circuit.width(), dag.num_inputs() + 4);
}

#[test]
fn and_tree_fits_16_qubit_device() {
    let dag = and_tree(9);
    let (strategy, compiled) = pipeline(&dag, 7);
    assert!(compiled.circuit.width() <= 16);
    // Bennett reference: 17 qubits, 15 gates.
    let naive = compile(&dag, &bennett(&dag)).expect("compiles");
    assert_eq!(naive.circuit.width(), 17);
    assert_eq!(naive.circuit.num_gates(), 15);
    // The constrained strategy pays gates for qubits.
    assert!(strategy.num_moves() > 15);
    assert!(
        compiled.circuit.num_gates() < 48,
        "fewer gates than Barenco"
    );
}

#[test]
fn c17_netlist_end_to_end() {
    let dag = parse_bench(C17_BENCH).expect("parses");
    // 4 pebbles suffice for c17 (the paper reports P = 4, K = 12 on its
    // XMG version; our DAG is the raw NAND netlist of the same size).
    let (strategy, _) = pipeline(&dag, 4);
    assert!(strategy.max_pebbles(&dag) <= 4);
}

#[test]
fn chains_trade_space_for_time() {
    let dag = chain(15);
    let naive = bennett(&dag);
    assert_eq!(naive.max_pebbles(&dag), 15);
    let (strategy, _) = pipeline(&dag, 6);
    assert!(strategy.max_pebbles(&dag) <= 6);
    assert!(
        strategy.num_moves() > naive.num_moves(),
        "fewer pebbles must cost extra recomputation on a chain"
    );
}

#[test]
fn h_operator_pebbles_below_bennett() {
    let dag = h_operator().to_dag().expect("valid");
    let naive = bennett(&dag);
    assert_eq!(naive.max_pebbles(&dag), 8);
    // 6 pebbles: 4 outputs + t1..t4 cleaned up along the way.
    let (strategy, _) = pipeline(&dag, 6);
    assert!(strategy.max_pebbles(&dag) <= 6);
}

#[test]
fn edwards_program_pebbles_with_half_the_memory() {
    let dag = edwards_add_projective().to_dag().expect("valid");
    let naive = bennett(&dag);
    assert_eq!(naive.max_pebbles(&dag), 20);
    let (strategy, _) = pipeline(&dag, 10);
    assert!(strategy.max_pebbles(&dag) <= 10);
}

#[test]
fn weighted_pebbling_respects_word_widths() {
    use revpebble::core::{EncodingOptions, MoveMode, PebbleSolver, SolverOptions};
    // An SLP where each value occupies 4 qubits: budget is in qubits.
    let slp = h_operator();
    let mut dag = Dag::new();
    {
        // Rebuild with weight 4 per node.
        let src: Vec<Source> = slp
            .inputs
            .iter()
            .map(|name| dag.add_input(name.clone()))
            .collect();
        let mut env: std::collections::HashMap<&str, Source> = slp
            .inputs
            .iter()
            .enumerate()
            .map(|(i, name)| (name.as_str(), src[i]))
            .collect();
        for op in &slp.ops {
            let fanins: Vec<Source> = op.args.iter().map(|a| env[a.as_str()]).collect();
            let id = dag
                .add_node_weighted(op.dest.clone(), op.op, fanins, 4)
                .expect("valid");
            env.insert(&op.dest, Source::Node(id));
        }
        for out in &slp.outputs {
            match env[out.as_str()] {
                Source::Node(n) => dag.mark_output(n),
                Source::Input(_) => unreachable!(),
            }
        }
    }
    let options = SolverOptions {
        encoding: EncodingOptions {
            max_pebbles: Some(24), // 24 qubits = 6 values of width 4
            weighted: true,
            move_mode: MoveMode::Sequential,
            ..EncodingOptions::default()
        },
        ..SolverOptions::default()
    };
    let strategy = PebbleSolver::new(&dag, options)
        .solve()
        .into_strategy()
        .expect("feasible");
    strategy
        .validate_weighted(&dag, Some(24))
        .expect("weighted limit respected");
    assert!(strategy.max_weight(&dag) <= 24);
}

#[test]
fn random_dags_full_pipeline() {
    for seed in 0..6 {
        let dag = random_dag(5, 14, seed);
        let budget = revpebble::core::bounds::pebble_lower_bound(&dag) + 3;
        let report = PebblingSession::new(&dag)
            .pebbles(budget.min(dag.num_nodes()))
            .run()
            .expect("a valid configuration");
        if let Some(strategy) = report.into_strategy() {
            let compiled = compile(&dag, &strategy).expect("compiles");
            assert!(
                matches!(verify(&dag, &compiled), VerifyOutcome::Correct { .. }),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn parallel_and_sequential_strategies_agree_on_validity() {
    use revpebble::core::{EncodingOptions, MoveMode, PebbleSolver, SolverOptions};
    let dag = and_tree(8);
    for mode in [MoveMode::Sequential, MoveMode::Parallel] {
        let options = SolverOptions {
            encoding: EncodingOptions {
                max_pebbles: Some(7),
                move_mode: mode,
                ..EncodingOptions::default()
            },
            ..SolverOptions::default()
        };
        let strategy = PebbleSolver::new(&dag, options)
            .solve()
            .into_strategy()
            .expect("feasible");
        strategy.validate(&dag, Some(7)).expect("valid");
        let compiled = compile(&dag, &strategy).expect("compiles");
        assert!(matches!(
            verify(&dag, &compiled),
            VerifyOutcome::Correct { .. }
        ));
    }
}
