//! Property tests for the incremental assumption-bounded budget search:
//! on random DAGs it must certify exactly the budgets the paper's
//! fresh-solver-per-probe methodology certifies, produce valid
//! strategies, and demonstrably run every probe on one solver instance
//! (cumulative statistics never reset).

use proptest::prelude::*;
use revpebble::core::{
    BudgetSchedule, EncodingOptions, MinimizeResult, MoveMode, PebblingSession, SessionOutcome,
    SolverOptions,
};
use revpebble::graph::generators::random_dag;
use revpebble::graph::Dag;
use std::time::Duration;

/// One minimize search through the session front door.
fn minimize_session(
    dag: &Dag,
    base: SolverOptions,
    schedule: BudgetSchedule,
    incremental: bool,
) -> MinimizeResult {
    let report = PebblingSession::new(dag)
        .solver_options(base)
        .minimize()
        .budget(schedule)
        .incremental(incremental)
        .per_query_timeout(PER_QUERY)
        .run()
        .expect("a valid configuration");
    match report.outcome {
        SessionOutcome::Minimize(result) => result,
        _ => unreachable!("a single-worker minimize session ran"),
    }
}

fn base() -> SolverOptions {
    SolverOptions {
        encoding: EncodingOptions {
            move_mode: MoveMode::Sequential,
            ..EncodingOptions::default()
        },
        // StepLimit (not the clock) terminates infeasible probes, keeping
        // every probe outcome deterministic.
        max_steps: 40,
        ..SolverOptions::default()
    }
}

const PER_QUERY: Duration = Duration::from_secs(60);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn incremental_matches_fresh_and_never_resets_stats(
        inputs in 2usize..5,
        nodes in 3usize..12,
        seed in any::<u64>(),
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let fresh = minimize_session(&dag, base(), BudgetSchedule::Binary, false);
        let incremental = minimize_session(&dag, base(), BudgetSchedule::Binary, true);

        // Identical minimal budgets…
        prop_assert_eq!(
            fresh.best.as_ref().map(|&(p, _)| p),
            incremental.best.as_ref().map(|&(p, _)| p)
        );
        // …and valid strategies from both engines.
        if let Some((p, strategy)) = &fresh.best {
            prop_assert!(strategy.validate(&dag, Some(*p)).is_ok());
        }
        if let Some((p, strategy)) = &incremental.best {
            prop_assert!(strategy.validate(&dag, Some(*p)).is_ok());
        }

        // Single-instance audit: one solver answered every query, and its
        // counters are monotone across probes — never reset.
        prop_assert_eq!(incremental.sat.solves, incremental.search.queries as u64);
        for window in incremental.probe_stats.windows(2) {
            prop_assert!(window[1].conflicts >= window[0].conflicts);
            prop_assert!(window[1].restarts >= window[0].restarts);
            prop_assert!(window[1].decisions >= window[0].decisions);
            prop_assert!(window[1].propagations >= window[0].propagations);
            prop_assert!(window[1].solves > window[0].solves);
        }
    }

    #[test]
    fn budget_schedules_agree_on_the_minimum(
        inputs in 2usize..5,
        nodes in 3usize..10,
        seed in any::<u64>(),
        stride in 1usize..4,
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let binary = minimize_session(&dag, base(), BudgetSchedule::Binary, true);
        let descending =
            minimize_session(&dag, base(), BudgetSchedule::Descending { stride }, true);
        prop_assert_eq!(
            binary.best.as_ref().map(|&(p, _)| p),
            descending.best.as_ref().map(|&(p, _)| p)
        );
        if let Some((p, strategy)) = &descending.best {
            prop_assert!(strategy.validate(&dag, Some(*p)).is_ok());
        }
    }
}
