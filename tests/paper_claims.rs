//! Direct checks of the concrete numbers stated in the paper, where our
//! reproduction can match them exactly.

use std::time::Duration;

use revpebble::circuit::barenco;
use revpebble::graph::generators::{and_tree, paper_example};
use revpebble::prelude::*;

/// Section II-B / Fig. 4 (left): Bennett pebbles the example with 6
/// pebbles in 10 steps, "that is minimum".
#[test]
fn fig4_bennett_6_pebbles_10_steps() {
    let dag = paper_example();
    let strategy = bennett(&dag);
    strategy.validate(&dag, Some(6)).expect("valid");
    assert_eq!(strategy.max_pebbles(&dag), 6);
    assert_eq!(strategy.num_steps(), 10);
    // 10 steps is minimal: the SAT solver refutes 9 (sequential moves).
    use revpebble::core::{EncodingOptions, MoveMode, PebbleEncoding};
    let mut enc = PebbleEncoding::new(
        &dag,
        EncodingOptions {
            max_pebbles: None,
            move_mode: MoveMode::Sequential,
            ..EncodingOptions::default()
        },
    );
    assert_eq!(
        enc.solve_at(9, None, None),
        revpebble::sat::SolveResult::Unsat
    );
}

/// Section II-B / Fig. 4 (right): the paper's 4-pebble strategy takes 14
/// steps. We replay its exact configuration sequence and verify it; the
/// SAT solver additionally proves 12 steps suffice (the paper's strategy
/// is illustrative, not step-optimal).
#[test]
fn fig4_optimized_4_pebbles() {
    let dag = paper_example();
    let n = NodeId::from_index;
    let paper_strategy = Strategy::from_moves([
        Move::Pebble(n(0)),
        Move::Pebble(n(2)),
        Move::Unpebble(n(0)),
        Move::Pebble(n(1)),
        Move::Pebble(n(3)),
        Move::Unpebble(n(1)),
        Move::Pebble(n(4)),
        Move::Pebble(n(0)),
        Move::Unpebble(n(2)),
        Move::Pebble(n(5)),
        Move::Unpebble(n(0)),
        Move::Pebble(n(1)),
        Move::Unpebble(n(3)),
        Move::Unpebble(n(1)),
    ]);
    paper_strategy
        .validate(&dag, Some(4))
        .expect("the paper's strategy is valid");
    assert_eq!(paper_strategy.num_steps(), 14);
    assert_eq!(paper_strategy.max_pebbles(&dag), 4);

    let optimal = PebblingSession::new(&dag)
        .pebbles(4)
        .run()
        .expect("a valid configuration")
        .into_strategy()
        .expect("feasible");
    assert_eq!(optimal.num_steps(), 12);
}

/// Fig. 6(b): Bennett on the 9-input AND needs 17 qubits — one too many
/// for the 16-qubit device — and 15 gates.
#[test]
fn fig6b_bennett_17_qubits_15_gates() {
    let dag = and_tree(9);
    let compiled = compile(&dag, &bennett(&dag)).expect("compiles");
    assert_eq!(compiled.circuit.width(), 17);
    assert_eq!(compiled.circuit.num_gates(), 15);
    assert!(compiled.circuit.width() > 16, "does not fit the device");
}

/// Fig. 6(d): the Barenco decomposition of a 9-controlled Toffoli uses 11
/// qubits in total and 48 gates ("from 15 to 48").
#[test]
fn fig6d_barenco_11_qubits_48_gates() {
    assert_eq!(barenco::one_ancilla_gate_count(9), 48);
    // 9 controls + target + 1 ancilla = 11 qubits.
    let qubits: Vec<_> = (0..11).map(revpebble::circuit::Qubit).collect();
    let gates = barenco::mcx_one_ancilla(&qubits[..9], qubits[9], qubits[10]);
    assert_eq!(gates.len(), 48);
}

/// Fig. 6(c): constrained to the 16-qubit device, SAT pebbling finds a
/// circuit with more gates than Bennett's 15 but far fewer than Barenco's
/// 48. (The paper reports 23 gates; the exact optimum depends on the move
/// semantics — we assert the crossover, which is the claim's substance.)
#[test]
fn fig6c_pebbling_crossover() {
    let dag = and_tree(9);
    let budget = 16 - dag.num_inputs(); // 7 pebbles
    let strategy = PebblingSession::new(&dag)
        .pebbles(budget)
        .run()
        .expect("a valid configuration")
        .into_strategy()
        .expect("feasible");
    let compiled = compile(&dag, &strategy).expect("compiles");
    assert!(compiled.circuit.width() <= 16, "fits the device");
    let gates = compiled.circuit.num_gates();
    assert!(gates > 15, "pays gates over Bennett (got {gates})");
    assert!(gates < 48, "beats Barenco (got {gates})");
}

/// Table I row `c17`: pi 5, po 2, 12 XMG nodes; the paper's pebbling finds
/// P = 4, K = 12. Our c17 DAG is the raw 6-gate NAND netlist (the paper
/// pebbles a 12-node XMG), so we check the methodology on our DAG: the
/// minimum feasible pebble count is found and beats Bennett.
#[test]
fn table1_c17_methodology() {
    let dag = parse_bench(revpebble::graph::data::C17_BENCH).expect("parses");
    let base = SolverOptions {
        encoding: EncodingOptions {
            move_mode: MoveMode::Sequential,
            ..EncodingOptions::default()
        },
        max_steps: 100,
        ..SolverOptions::default()
    };
    let report = PebblingSession::new(&dag)
        .solver_options(base)
        .minimize()
        .per_query_timeout(Duration::from_secs(20))
        .run()
        .expect("a valid configuration");
    let p = report.minimum.expect("feasible");
    let strategy = report.into_strategy().expect("feasible");
    let naive_p = bennett(&dag).max_pebbles(&dag);
    assert!(p < naive_p, "SAT ({p}) must beat Bennett ({naive_p})");
    strategy.validate(&dag, Some(p)).expect("valid");
}

/// Section IV-B: the H operator maps (a,b,c,d) through 8 add/sub
/// operations to 4 outputs; its DAG has depth 2 and Bennett needs 8
/// pebbles and 12 steps.
#[test]
fn h_operator_structure() {
    let dag = revpebble::graph::slp::h_operator().to_dag().expect("valid");
    assert_eq!(dag.num_nodes(), 8);
    assert_eq!(dag.num_outputs(), 4);
    assert_eq!(dag.depth(), 2);
    let strategy = bennett(&dag);
    assert_eq!(strategy.max_pebbles(&dag), 8);
    assert_eq!(strategy.num_steps(), 12); // 2·8 − 4
}
