//! Property tests for the flat clause arena's garbage collection: a
//! solver configured to reduce its learned-clause database (and thus
//! mark-compact the arena) as often as possible must certify exactly the
//! same pebbling answers as the default configuration on random DAGs —
//! same SAT/UNSAT outcomes per budget, same certified minima, same floors.

use proptest::prelude::*;
use revpebble::core::{
    EncodingOptions, MinimizeResult, MoveMode, PebbleOutcome, PebbleSolver, PebblingSession,
    SessionOutcome, SolverOptions,
};
use revpebble::graph::generators::random_dag;
use revpebble::graph::Dag;
use revpebble::sat::SolverConfig;
use std::time::Duration;

/// Forces a clause-database reduction — and with it an arena GC — at
/// nearly every opportunity.
fn gc_heavy() -> SolverConfig {
    SolverConfig {
        min_learnts: 4.0,
        learntsize_factor: 0.0,
        ..SolverConfig::default()
    }
}

fn base(sat: SolverConfig) -> SolverOptions {
    SolverOptions {
        encoding: EncodingOptions {
            move_mode: MoveMode::Sequential,
            ..EncodingOptions::default()
        },
        // StepLimit (not the clock) terminates infeasible probes, keeping
        // every probe outcome deterministic.
        max_steps: 40,
        sat,
        ..SolverOptions::default()
    }
}

const PER_QUERY: Duration = Duration::from_secs(60);

/// One incremental minimize search through the session front door.
fn minimize_session(dag: &Dag, base: SolverOptions) -> MinimizeResult {
    let report = PebblingSession::new(dag)
        .solver_options(base)
        .minimize()
        .per_query_timeout(PER_QUERY)
        .run()
        .expect("a valid configuration");
    match report.outcome {
        SessionOutcome::Minimize(result) => result,
        _ => unreachable!("a single-worker minimize session ran"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn gc_heavy_minimize_certifies_the_same_minima(
        inputs in 2usize..5,
        nodes in 3usize..10,
        seed in any::<u64>(),
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let compacting = minimize_session(&dag, base(gc_heavy()));
        let reference = minimize_session(&dag, base(SolverConfig::default()));

        prop_assert_eq!(
            compacting.best.as_ref().map(|&(p, _)| p),
            reference.best.as_ref().map(|&(p, _)| p),
            "arena compaction must not change the certified minimum"
        );
        prop_assert_eq!(compacting.floor, reference.floor);
        if let Some((p, strategy)) = &compacting.best {
            prop_assert!(strategy.validate(&dag, Some(*p)).is_ok());
            // Model-based tightening invariant: `best` records exactly
            // what the strategy itself certifies.
            prop_assert_eq!(*p, strategy.max_pebbles(&dag));
        }
    }

    #[test]
    fn gc_heavy_probes_agree_budget_by_budget(
        inputs in 2usize..4,
        nodes in 3usize..8,
        seed in any::<u64>(),
    ) {
        // Sweep every budget with both configurations on one incremental
        // instance each: identical Solved/StepLimit/Infeasible outcomes.
        let dag = random_dag(inputs, nodes, seed);
        let mut compacting = PebbleSolver::new(&dag, base(gc_heavy()));
        let mut reference = PebbleSolver::new(&dag, base(SolverConfig::default()));
        for p in (1..=dag.num_nodes()).rev() {
            let a = compacting.resolve_with_budget(p);
            let b = reference.resolve_with_budget(p);
            let solved = |o: &PebbleOutcome| matches!(o, PebbleOutcome::Solved(_));
            prop_assert_eq!(solved(&a), solved(&b), "budget {}: {:?} vs {:?}", p, a, b);
            if let PebbleOutcome::Solved(strategy) = &a {
                prop_assert!(strategy.validate(&dag, Some(p)).is_ok());
            }
        }
    }

    #[test]
    fn single_budget_probes_match_under_gc(
        inputs in 2usize..5,
        nodes in 3usize..10,
        seed in any::<u64>(),
        budget in 2usize..8,
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let gc_options = SolverOptions {
            encoding: EncodingOptions {
                max_pebbles: Some(budget),
                move_mode: MoveMode::Sequential,
                ..EncodingOptions::default()
            },
            ..base(gc_heavy())
        };
        let outcome = PebbleSolver::new(&dag, gc_options).solve();
        let reference_options = SolverOptions {
            sat: SolverConfig::default(),
            ..gc_options
        };
        let reference = PebbleSolver::new(&dag, reference_options).solve();
        let solved = |o: &PebbleOutcome| matches!(o, PebbleOutcome::Solved(_));
        prop_assert_eq!(solved(&outcome), solved(&reference));
    }
}
