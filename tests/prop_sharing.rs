//! Property tests for the cooperative minimize portfolio: on random DAGs
//! with decisive probes (generous budgets, adequate step caps), sharing
//! learnt clauses and certified bounds between workers must never change
//! the answer — the shared-pool portfolio, the isolated portfolio and the
//! single-worker incremental engine all certify the same minimum — and
//! every core-derived lower bound must stay below or at that minimum.

use std::time::Duration;

use proptest::prelude::*;
use revpebble::graph::generators::random_dag;
use revpebble::prelude::*;

fn decisive_base(nodes: usize) -> SolverOptions {
    SolverOptions {
        // Step caps above any optimum these little DAGs admit, so every
        // probe ends in SAT or a certified StepLimit, never a timeout —
        // the regime where engine answers are theorems, not clock races.
        max_steps: 4 * nodes + 20,
        ..SolverOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn shared_pool_portfolio_matches_single_worker_incremental(
        inputs in 2usize..5,
        nodes in 4usize..14,
        seed in any::<u64>(),
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let base = decisive_base(dag.num_nodes());
        let per_query = Duration::from_secs(60);

        let single_report = PebblingSession::new(&dag)
            .solver_options(base)
            .minimize()
            .per_query_timeout(per_query)
            .run()
            .expect("a valid configuration");
        let SessionOutcome::Minimize(single) = single_report.outcome else {
            panic!("a single-worker minimize session ran");
        };
        let shared_report = PebblingSession::new(&dag)
            .solver_options(base)
            .minimize()
            .portfolio(4)
            .share_clauses(ShareOptions::default())
            .per_query_timeout(per_query)
            .run()
            .expect("a valid configuration");
        let SessionOutcome::MinimizePortfolio(shared) = shared_report.outcome else {
            panic!("a minimize portfolio ran");
        };

        let single_min = single.best.as_ref().map(|&(p, _)| p);
        let shared_min = shared.best.as_ref().map(|&(p, _)| p);
        prop_assert_eq!(
            shared_min, single_min,
            "shared-pool portfolio must certify the single-worker minimum"
        );
        if let Some((p, strategy)) = &shared.best {
            strategy.validate(&dag, Some(*p)).expect("winner's strategy is valid");
            // Core-derived lower bounds are certificates: they can meet
            // the minimum but never cross it.
            prop_assert!(
                shared.sharing.floor <= *p,
                "floor {} exceeds certified minimum {}", shared.sharing.floor, p
            );
        }
    }

    #[test]
    fn unsat_core_floor_never_exceeds_the_true_minimum(
        inputs in 2usize..5,
        nodes in 4usize..12,
        seed in any::<u64>(),
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let base = decisive_base(dag.num_nodes());
        let report = PebblingSession::new(&dag)
            .solver_options(base)
            .minimize()
            .per_query_timeout(Duration::from_secs(60))
            .run()
            .expect("a valid configuration");
        let SessionOutcome::Minimize(result) = report.outcome else {
            panic!("a single-worker minimize session ran");
        };
        let (minimum, strategy) = result.best.as_ref().expect("decisive probes always certify");
        strategy.validate(&dag, Some(*minimum)).expect("valid");
        prop_assert!(
            result.floor <= *minimum,
            "core/StepLimit-derived floor {} exceeds true minimum {}",
            result.floor,
            minimum
        );
    }
}
