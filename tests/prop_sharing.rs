//! Property tests for the cooperative minimize portfolio: on random DAGs
//! with decisive probes (generous budgets, adequate step caps), sharing
//! learnt clauses and certified bounds between workers must never change
//! the answer — the shared-pool portfolio, the isolated portfolio and the
//! single-worker incremental engine all certify the same minimum — and
//! every core-derived lower bound must stay below or at that minimum.
//! That holds even when the workers use *different* cardinality
//! encodings (clauses then travel through the pebble-variable prefix
//! contract) and HordeSat-style heuristic diversification on top.

use std::time::Duration;

use proptest::prelude::*;
use revpebble::graph::generators::random_dag;
use revpebble::prelude::*;

fn decisive_base(nodes: usize) -> SolverOptions {
    SolverOptions {
        // Step caps above any optimum these little DAGs admit, so every
        // probe ends in SAT or a certified StepLimit, never a timeout —
        // the regime where engine answers are theorems, not clock races.
        max_steps: 4 * nodes + 20,
        ..SolverOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn shared_pool_portfolio_matches_single_worker_incremental(
        inputs in 2usize..5,
        nodes in 4usize..14,
        seed in any::<u64>(),
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let base = decisive_base(dag.num_nodes());
        let per_query = Duration::from_secs(60);

        let single_report = PebblingSession::new(&dag)
            .solver_options(base)
            .minimize()
            .per_query_timeout(per_query)
            .run()
            .expect("a valid configuration");
        let SessionOutcome::Minimize(single) = single_report.outcome else {
            panic!("a single-worker minimize session ran");
        };
        let shared_report = PebblingSession::new(&dag)
            .solver_options(base)
            .minimize()
            .portfolio(4)
            .share_clauses(ShareOptions::default())
            .per_query_timeout(per_query)
            .run()
            .expect("a valid configuration");
        let SessionOutcome::MinimizePortfolio(shared) = shared_report.outcome else {
            panic!("a minimize portfolio ran");
        };

        let single_min = single.best.as_ref().map(|&(p, _)| p);
        let shared_min = shared.best.as_ref().map(|&(p, _)| p);
        prop_assert_eq!(
            shared_min, single_min,
            "shared-pool portfolio must certify the single-worker minimum"
        );
        if let Some((p, strategy)) = &shared.best {
            strategy.validate(&dag, Some(*p)).expect("winner's strategy is valid");
            // Core-derived lower bounds are certificates: they can meet
            // the minimum but never cross it.
            prop_assert!(
                shared.sharing.floor <= *p,
                "floor {} exceeds certified minimum {}", shared.sharing.floor, p
            );
        }
    }

    #[test]
    fn mixed_encoding_diversified_race_matches_single_worker_incremental(
        inputs in 2usize..5,
        nodes in 4usize..12,
        seed in any::<u64>(),
    ) {
        use revpebble::core::{
            default_minimize_portfolio, minimize_portfolio_with_sharing, CardEncoding,
        };

        // Workers with *different* cardinality encodings (same move mode
        // and weighting) cooperate through the pebble-variable prefix
        // contract, with HordeSat heuristic jitter on top; the certified
        // minimum must still match the single-worker incremental engine
        // on every random DAG.
        let dag = random_dag(inputs, nodes, seed);
        let base = decisive_base(dag.num_nodes());
        let per_query = Duration::from_secs(60);

        let mut configs = default_minimize_portfolio(base, 3);
        configs[1].base.encoding.card_encoding = CardEncoding::Totalizer;
        configs[2].base.encoding.card_encoding = CardEncoding::Pairwise;
        let shared = minimize_portfolio_with_sharing(
            &dag,
            configs,
            per_query,
            ShareOptions::diversified(),
        );

        let single_report = PebblingSession::new(&dag)
            .solver_options(base)
            .minimize()
            .incremental(true)
            .per_query_timeout(per_query)
            .run()
            .expect("a valid configuration");
        let SessionOutcome::Minimize(single) = single_report.outcome else {
            panic!("a single-worker minimize session ran");
        };

        let single_min = single.best.as_ref().map(|&(p, _)| p);
        let shared_min = shared.best.as_ref().map(|&(p, _)| p);
        if shared_min != single_min {
            // A mismatch here is a soundness failure in the cooperative
            // layer; dump the per-worker view before panicking, because
            // which worker mis-certified (and via which cardinality
            // encoding) is the whole diagnosis.
            eprintln!(
                "MISMATCH shared={shared_min:?} single={single_min:?} \
                 floor={} pool={:?}",
                shared.sharing.floor, shared.sharing.pool
            );
            for (i, w) in shared.workers.iter().enumerate() {
                eprintln!(
                    "worker {i}: best={:?} floor={} probes={:?} cancelled={} \
                     imports={} exports={} card={:?}",
                    w.result.best.as_ref().map(|&(p, _)| p),
                    w.result.floor,
                    w.result.probes,
                    w.cancelled,
                    w.result.sat.imported_clauses,
                    w.result.sat.exported_clauses,
                    w.config.base.encoding.card_encoding,
                );
            }
        }
        prop_assert_eq!(
            shared_min, single_min,
            "mixed-encoding diversified race must certify the single-worker minimum"
        );
        if let Some((p, strategy)) = &shared.best {
            strategy.validate(&dag, Some(*p)).expect("winner's strategy is valid");
            prop_assert!(
                shared.sharing.floor <= *p,
                "floor {} exceeds certified minimum {}", shared.sharing.floor, p
            );
        }
    }

    #[test]
    fn unsat_core_floor_never_exceeds_the_true_minimum(
        inputs in 2usize..5,
        nodes in 4usize..12,
        seed in any::<u64>(),
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let base = decisive_base(dag.num_nodes());
        let report = PebblingSession::new(&dag)
            .solver_options(base)
            .minimize()
            .per_query_timeout(Duration::from_secs(60))
            .run()
            .expect("a valid configuration");
        let SessionOutcome::Minimize(result) = report.outcome else {
            panic!("a single-worker minimize session ran");
        };
        let (minimum, strategy) = result.best.as_ref().expect("decisive probes always certify");
        strategy.validate(&dag, Some(*minimum)).expect("valid");
        prop_assert!(
            result.floor <= *minimum,
            "core/StepLimit-derived floor {} exceeds true minimum {}",
            result.floor,
            minimum
        );
    }
}
