//! Loopback acceptance suite for the `revpebble-serve` daemon: many
//! concurrent clients multiplexed onto one small worker pool, result
//! caching across requests, quota enforcement over the wire, explicit
//! load shedding, and the failure-domain walls — a malformed frame, a
//! mid-solve disconnect and an injected handler panic must each stay
//! contained to their own request or connection.
//!
//! Every daemon here binds port 0 on loopback and is shut down (and its
//! accept thread joined) before the test returns; nothing may hang — CI
//! wraps the suite in a hard `timeout`.

use std::time::{Duration, Instant};

use revpebble::graph::parse_json;
use revpebble::sat::{FaultKind, FaultPlan, FaultSite};
use revpebble_serve::{
    submit_frame, Client, Request, ServeConfig, ServeStats, Server, ServerHandle,
};

/// A daemon on an ephemeral loopback port with its accept loop on a
/// background thread.
struct TestServer {
    addr: std::net::SocketAddr,
    handle: ServerHandle,
    thread: std::thread::JoinHandle<ServeStats>,
}

fn start(config: ServeConfig) -> TestServer {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("bind an ephemeral loopback port");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    TestServer {
        addr,
        handle,
        thread,
    }
}

impl TestServer {
    /// Graceful shutdown: drain, join the accept thread, return the
    /// final stats.
    fn finish(self) -> ServeStats {
        self.handle.shutdown();
        self.thread.join().expect("the accept loop must not panic")
    }
}

/// The suite's fast workload: a fixed-budget solve of the paper's
/// six-node example (milliseconds), so concurrency tests measure the
/// daemon, not the SAT solver.
fn fast_request(name: &str) -> Request {
    let mut request = Request::builtin(name, "paper");
    request.pebbles = Some(4);
    request
}

/// Polls `probe` until it returns true or `deadline` elapses.
fn wait_until(deadline: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

fn status_of(response: &str) -> String {
    parse_json(response)
        .expect("every response line is valid JSON")
        .get("status")
        .and_then(|s| s.as_str().map(str::to_owned))
        .expect("every response carries a status")
}

#[test]
fn eight_concurrent_clients_share_a_four_worker_pool() {
    let server = start(ServeConfig {
        workers: 4,
        connections: 16,
        max_pending: 64,
        ..ServeConfig::default()
    });
    let addr = server.addr;
    let clients: Vec<_> = (0..8)
        .map(|index| {
            std::thread::spawn(move || {
                let frame = fast_request(&format!("client-{index}")).to_json();
                submit_frame(addr, &frame, Duration::from_secs(120)).expect("a response line")
            })
        })
        .collect();
    for (index, client) in clients.into_iter().enumerate() {
        let response = client.join().expect("client thread");
        let value = parse_json(&response).expect("valid JSON");
        assert_eq!(
            value.get("status").and_then(|s| s.as_str()),
            Some("ok"),
            "client {index} got {response}"
        );
        assert_eq!(
            value.get("name").and_then(|s| s.as_str()),
            Some(format!("client-{index}").as_str())
        );
    }
    let stats = server.finish();
    assert_eq!(stats.ok, 8);
    assert_eq!(stats.requests, 8);
    // All eight asked the same (dag, configuration) question, so the
    // shared cache answered most of them without solving.
    assert_eq!(stats.cache_hits + stats.cache_misses, 8);
    assert!(stats.cache_misses >= 1);
}

#[test]
fn resubmitting_an_isomorphic_dag_hits_the_result_cache() {
    let server = start(ServeConfig::default());
    let mut client = Client::connect(server.addr).expect("connect");
    let first = client.send(&fast_request("first")).expect("response");
    assert_eq!(status_of(&first), "ok");
    let misses_after_first = server.handle.stats().cache_misses;
    let again = client.send(&fast_request("again")).expect("response");
    assert_eq!(status_of(&again), "ok");
    let stats = server.finish();
    assert!(
        stats.cache_hits >= 1,
        "the resubmit must be answered from the cache: {stats:?}"
    );
    assert_eq!(stats.cache_misses, misses_after_first);
    // The cached report is the same answer, not a degraded one.
    let report = parse_json(&again).unwrap();
    assert_eq!(
        report
            .get("report")
            .and_then(|r| r.get("minimum"))
            .and_then(|m| m.as_u64()),
        Some(4)
    );
}

#[test]
fn request_quotas_are_enforced_over_the_wire() {
    // Server-side default quota 50; the request's own quota may tighten
    // but never widen it.
    let server = start(ServeConfig {
        quota: Some(50),
        ..ServeConfig::default()
    });
    let mut request = Request::builtin("strangled", "b3_m4");
    request.minimize = true;
    request.quota = Some(1_000_000); // wider than the server's: clamped
    let mut client = Client::connect(server.addr).expect("connect");
    let response = client.send(&request).expect("response");
    let value = parse_json(&response).expect("valid JSON");
    assert_eq!(value.get("status").and_then(|s| s.as_str()), Some("ok"));
    assert_eq!(
        value
            .get("report")
            .and_then(|r| r.get("stop_reason"))
            .and_then(|s| s.as_str()),
        Some("quota"),
        "a 50-conflict quota cannot finish b3_m4: {response}"
    );
    server.finish();
}

#[test]
fn a_malformed_frame_answers_an_error_and_the_connection_survives() {
    let server = start(ServeConfig::default());
    let mut client = Client::connect(server.addr).expect("connect");

    let garbage = client.send_raw("this is not json").expect("response");
    let value = parse_json(&garbage).expect("even rejections are valid JSON");
    assert_eq!(value.get("status").and_then(|s| s.as_str()), Some("error"));
    assert_eq!(
        value.get("kind").and_then(|k| k.as_str()),
        Some("bad-request")
    );

    let unknown_field = client
        .send_raw(r#"{"dag":"paper","surprise":1}"#)
        .expect("response");
    assert_eq!(status_of(&unknown_field), "error");

    // A duplicate key would silently shadow its second occurrence, so
    // it is rejected like a typo.
    let duplicate_field = client
        .send_raw(r#"{"dag":"paper","dag":"c17"}"#)
        .expect("response");
    assert_eq!(status_of(&duplicate_field), "error");

    // Same connection, next frame: served normally.
    let ok = client
        .send(&fast_request("after-garbage"))
        .expect("response");
    assert_eq!(status_of(&ok), "ok");

    let stats = server.finish();
    assert_eq!(stats.errors, 3);
    assert_eq!(stats.ok, 1);
    assert_eq!(stats.connections, 1);
}

#[test]
fn a_newline_free_flood_is_capped_not_buffered() {
    use std::io::Write as _;

    // A hostile client streams bytes continuously without ever sending
    // a newline. The frame cap must trip on the accumulated bytes even
    // though data keeps arriving (no read ever times out), instead of
    // buffering the stream without bound.
    let server = start(ServeConfig {
        max_frame_bytes: 4096,
        ..ServeConfig::default()
    });
    let mut flood = std::net::TcpStream::connect(server.addr).expect("connect");
    let chunk = [b'x'; 1024];
    for _ in 0..256 {
        // Once the server bails it closes the socket; later writes
        // failing with EPIPE/ECONNRESET is the expected outcome.
        if flood.write_all(&chunk).is_err() {
            break;
        }
    }
    let handle = server.handle.clone();
    assert!(
        wait_until(Duration::from_secs(30), || handle.stats().errors >= 1),
        "the oversized frame must be rejected while the client is still streaming"
    );

    // The daemon survives and serves the next client normally.
    let response = submit_frame(
        server.addr,
        &fast_request("after-flood").to_json(),
        Duration::from_secs(120),
    )
    .expect("a response line");
    assert_eq!(status_of(&response), "ok");

    let stats = server.finish();
    assert!(stats.errors >= 1);
    assert_eq!(stats.ok, 1);
}

#[test]
fn a_disconnect_mid_solve_cancels_the_session() {
    let server = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    {
        let mut client = Client::connect(server.addr).expect("connect");
        // A solve that cannot finish quickly: minimize a 59-node SLP
        // with a generous per-query timeout and no quota.
        let mut slow = Request::builtin("abandoned", "b3_m4");
        slow.minimize = true;
        slow.timeout_ms = Some(120_000);
        client.send_only(&slow.to_json()).expect("frame written");
        let handle = server.handle.clone();
        assert!(
            wait_until(Duration::from_secs(30), || handle.in_flight() >= 1),
            "the slow request must be admitted"
        );
        // Dropping the client closes the socket mid-solve.
    }
    let handle = server.handle.clone();
    assert!(
        wait_until(Duration::from_secs(30), || {
            handle.stats().cancelled_disconnects >= 1
        }),
        "the disconnect must cancel the in-flight session: {:?}",
        server.handle.stats()
    );
    assert!(
        wait_until(Duration::from_secs(30), || handle.in_flight() == 0),
        "the cancelled session must release its admission slot"
    );
    let stats = server.finish();
    assert_eq!(stats.cancelled_disconnects, 1);
    assert_eq!(stats.ok, 0);
}

#[test]
fn load_beyond_max_pending_is_shed_with_an_overloaded_response() {
    let server = start(ServeConfig {
        workers: 1,
        connections: 8,
        max_pending: 1,
        ..ServeConfig::default()
    });
    // Occupy the single admission slot with a slow solve.
    let mut blocker = Client::connect(server.addr).expect("connect");
    let mut slow = Request::builtin("blocker", "b3_m4");
    slow.minimize = true;
    slow.timeout_ms = Some(120_000);
    blocker.send_only(&slow.to_json()).expect("frame written");
    let handle = server.handle.clone();
    assert!(
        wait_until(Duration::from_secs(30), || handle.in_flight() >= 1),
        "the blocker must be admitted"
    );

    // The next request finds the daemon full and is shed explicitly.
    let response = submit_frame(
        server.addr,
        &fast_request("shed").to_json(),
        Duration::from_secs(30),
    )
    .expect("a response line");
    assert_eq!(status_of(&response), "overloaded");

    drop(blocker); // cancel the slow session so shutdown drains quickly
    let stats = server.finish();
    assert!(stats.overloaded >= 1);
}

#[test]
fn an_injected_request_panic_is_quarantined() {
    // Seed 0: the very first visit to `serve.request` panics; every
    // later request passes the fail point untouched.
    let server = start(ServeConfig {
        faults: FaultPlan::inject(FaultSite::ServeRequest, FaultKind::Panic, 0),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr).expect("connect");

    let poisoned = client.send(&fast_request("poisoned")).expect("response");
    let value = parse_json(&poisoned).expect("valid JSON");
    assert_eq!(value.get("status").and_then(|s| s.as_str()), Some("error"));
    assert_eq!(value.get("kind").and_then(|k| k.as_str()), Some("panic"));
    assert_eq!(
        value.get("name").and_then(|n| n.as_str()),
        Some("poisoned"),
        "the panic response still names the request"
    );

    // Same connection, same daemon: the next request is served.
    let healed = client.send(&fast_request("healed")).expect("response");
    assert_eq!(status_of(&healed), "ok");

    let stats = server.finish();
    assert_eq!(stats.contained_panics, 1);
    assert_eq!(stats.ok, 1);
}

#[test]
fn hostile_request_names_round_trip_through_the_wire() {
    let server = start(ServeConfig::default());
    let name = "job \"7\"\twith\\escapes\nand\u{1}controls";
    let response = submit_frame(
        server.addr,
        &fast_request(name).to_json(),
        Duration::from_secs(120),
    )
    .expect("a response line");
    let value = parse_json(&response).expect("valid JSON despite the hostile name");
    assert_eq!(value.get("status").and_then(|s| s.as_str()), Some("ok"));
    assert_eq!(value.get("name").and_then(|n| n.as_str()), Some(name));
    server.finish();
}
