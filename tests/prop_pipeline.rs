//! Property tests over the whole pipeline: on random DAGs, every strategy
//! the system produces must pass the independent validity checker, and
//! every compiled circuit must implement the DAG with clean ancillae.

use proptest::prelude::*;
use revpebble::core::bounds::{pebble_lower_bound, step_lower_bound};
use revpebble::graph::generators::random_dag;
use revpebble::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bennett_is_always_valid_and_tight(
        inputs in 1usize..6,
        nodes in 1usize..25,
        seed in any::<u64>(),
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let strategy = bennett(&dag);
        prop_assert!(strategy.validate(&dag, Some(dag.num_nodes())).is_ok());
        prop_assert_eq!(strategy.num_steps(), step_lower_bound(&dag));
        prop_assert_eq!(strategy.max_pebbles(&dag), dag.num_nodes());
    }

    #[test]
    fn cone_wise_is_always_valid(
        inputs in 1usize..6,
        nodes in 1usize..25,
        seed in any::<u64>(),
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let strategy = cone_wise(&dag);
        prop_assert!(strategy.validate(&dag, None).is_ok());
        prop_assert!(strategy.max_pebbles(&dag) <= dag.num_nodes());
    }

    #[test]
    fn sat_strategies_validate_and_compile(
        inputs in 2usize..5,
        nodes in 3usize..12,
        seed in any::<u64>(),
        slack in 0usize..3,
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let budget = (pebble_lower_bound(&dag) + 1 + slack).min(dag.num_nodes());
        let report = PebblingSession::new(&dag)
            .pebbles(budget)
            .run()
            .expect("a valid configuration");
        let SessionOutcome::Single(outcome) = report.outcome else {
            panic!("a fixed-budget session drives the single engine");
        };
        match outcome {
            PebbleOutcome::Solved(strategy) => {
                prop_assert!(strategy.validate(&dag, Some(budget)).is_ok());
                let compiled = compile(&dag, &strategy).expect("compiles");
                let correct = matches!(verify(&dag, &compiled), VerifyOutcome::Correct { .. });
                prop_assert!(correct);
                // Width accounting: inputs + peak pebbles.
                prop_assert_eq!(
                    compiled.circuit.width(),
                    dag.num_inputs() + strategy.max_pebbles(&dag)
                );
            }
            PebbleOutcome::Infeasible { lower_bound } => {
                prop_assert!(budget < lower_bound);
            }
            // Tight budgets may need more steps than the default cap; that
            // is a budget outcome, not a correctness failure.
            PebbleOutcome::StepLimit { .. } | PebbleOutcome::Timeout { .. } => {}
        }
    }

    #[test]
    fn sat_never_beats_the_step_lower_bound(
        inputs in 2usize..5,
        nodes in 3usize..10,
        seed in any::<u64>(),
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let report = PebblingSession::new(&dag)
            .pebbles(dag.num_nodes())
            .run()
            .expect("a valid configuration");
        if let Some(strategy) = report.into_strategy() {
            // With unlimited-ish pebbles the optimum equals Bennett's count.
            prop_assert_eq!(strategy.num_moves(), step_lower_bound(&dag));
        }
    }
}
