//! Property tests for the `PebblingSession` front door: on random DAGs,
//! every deprecated free-function entry point and its session-builder
//! equivalent must certify identical minima, identical floors, and
//! produce valid strategies. Probes run in the decisive regime (generous
//! budgets, adequate step caps) so the answers are theorems, not clock
//! races.
//!
//! The deprecated names are exercised deliberately — that is the subject
//! under test.
#![allow(deprecated)]

use std::time::Duration;

use proptest::prelude::*;
use revpebble::core::{
    minimize_pebbles, minimize_pebbles_descending, minimize_pebbles_fresh, solve_with_pebbles,
    solve_with_pebbles_portfolio, BudgetSchedule, MinimizeResult, PebblingSession, SessionOutcome,
    SolverOptions,
};
use revpebble::graph::generators::random_dag;
use revpebble::graph::Dag;
use revpebble::prelude::{PebbleOutcome, ShareOptions};

const PER_QUERY: Duration = Duration::from_secs(60);

fn decisive_base(nodes: usize) -> SolverOptions {
    SolverOptions {
        // Step caps above any optimum these little DAGs admit, so every
        // probe ends in SAT or a certified StepLimit, never a timeout.
        max_steps: 4 * nodes + 20,
        ..SolverOptions::default()
    }
}

fn session_minimize(
    dag: &Dag,
    base: SolverOptions,
    schedule: BudgetSchedule,
    incremental: bool,
) -> MinimizeResult {
    let report = PebblingSession::new(dag)
        .solver_options(base)
        .minimize()
        .budget(schedule)
        .incremental(incremental)
        .per_query_timeout(PER_QUERY)
        .run()
        .expect("a valid configuration");
    match report.outcome {
        SessionOutcome::Minimize(result) => result,
        _ => unreachable!("a single-worker minimize session ran"),
    }
}

fn assert_equivalent(dag: &Dag, label: &str, legacy: &MinimizeResult, session: &MinimizeResult) {
    assert_eq!(
        legacy.best.as_ref().map(|&(p, _)| p),
        session.best.as_ref().map(|&(p, _)| p),
        "{label}: certified minima diverge"
    );
    assert_eq!(
        legacy.floor, session.floor,
        "{label}: certified floors diverge"
    );
    for (p, strategy) in legacy.best.iter().chain(session.best.iter()) {
        assert!(
            strategy.validate(dag, Some(*p)).is_ok(),
            "{label}: certified strategy invalid at budget {p}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn deprecated_solve_matches_session(
        inputs in 2usize..5,
        nodes in 3usize..12,
        seed in any::<u64>(),
        slack in 0usize..3,
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let budget = (revpebble::core::bounds::pebble_lower_bound(&dag) + slack)
            .min(dag.num_nodes())
            .max(1);
        let legacy = solve_with_pebbles(&dag, budget);
        let report = PebblingSession::new(&dag)
            .pebbles(budget)
            .run()
            .expect("a valid configuration");
        let SessionOutcome::Single(session) = &report.outcome else {
            panic!("a fixed-budget session drives the single engine");
        };
        let solved = |o: &PebbleOutcome| matches!(o, PebbleOutcome::Solved(_));
        prop_assert_eq!(
            solved(&legacy), solved(session),
            "budget {}: {:?} vs {:?}", budget, legacy, session
        );
        for outcome in [&legacy, session] {
            if let PebbleOutcome::Solved(strategy) = outcome {
                prop_assert!(strategy.validate(&dag, Some(budget)).is_ok());
            }
        }
    }

    #[test]
    fn deprecated_minimize_entry_points_match_session(
        inputs in 2usize..5,
        nodes in 3usize..10,
        seed in any::<u64>(),
        stride in 1usize..4,
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let base = decisive_base(dag.num_nodes());

        let legacy = minimize_pebbles(&dag, base, PER_QUERY);
        let session = session_minimize(&dag, base, BudgetSchedule::Binary, true);
        assert_equivalent(&dag, "minimize_pebbles", &legacy, &session);

        let legacy = minimize_pebbles_fresh(&dag, base, PER_QUERY);
        let session = session_minimize(&dag, base, BudgetSchedule::Binary, false);
        assert_equivalent(&dag, "minimize_pebbles_fresh", &legacy, &session);

        let legacy = minimize_pebbles_descending(&dag, base, PER_QUERY, stride);
        let session =
            session_minimize(&dag, base, BudgetSchedule::Descending { stride }, true);
        assert_equivalent(&dag, "minimize_pebbles_descending", &legacy, &session);
    }
}

proptest! {
    // Portfolio runs spawn threads per case; fewer cases keep CI quick.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn deprecated_portfolio_entry_points_match_session(
        inputs in 2usize..4,
        nodes in 3usize..9,
        seed in any::<u64>(),
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let base = decisive_base(dag.num_nodes());

        // Fixed-budget race: same solvability as the session's race.
        let budget = dag.num_nodes().max(1);
        let legacy = solve_with_pebbles_portfolio(&dag, budget, 2);
        let report = PebblingSession::new(&dag)
            .pebbles(budget)
            .portfolio(2)
            .run()
            .expect("a valid configuration");
        let SessionOutcome::Portfolio(session) = &report.outcome else {
            panic!("a fixed-budget portfolio session drives the race engine");
        };
        prop_assert_eq!(
            matches!(legacy.outcome, PebbleOutcome::Solved(_)),
            matches!(session.outcome, PebbleOutcome::Solved(_))
        );

        // Cooperative minimize race: the shared portfolio, the deprecated
        // wrapper and the single-worker incremental engine all certify
        // the same minimum in the decisive regime.
        let single = session_minimize(&dag, base, BudgetSchedule::Binary, true);
        let legacy = revpebble::core::minimize_portfolio_shared(&dag, base, PER_QUERY, 2);
        let shared_report = PebblingSession::new(&dag)
            .solver_options(base)
            .minimize()
            .portfolio(2)
            .share_clauses(ShareOptions::default())
            .per_query_timeout(PER_QUERY)
            .run()
            .expect("a valid configuration");
        let SessionOutcome::MinimizePortfolio(shared) = &shared_report.outcome else {
            panic!("a minimize portfolio ran");
        };
        let minimum = |best: &Option<(usize, revpebble::core::Strategy)>| {
            best.as_ref().map(|&(p, _)| p)
        };
        prop_assert_eq!(minimum(&legacy.best), minimum(&single.best));
        prop_assert_eq!(minimum(&shared.best), minimum(&single.best));
        prop_assert_eq!(shared_report.minimum, minimum(&single.best));
        if let Some((p, strategy)) = &shared.best {
            prop_assert!(strategy.validate(&dag, Some(*p)).is_ok());
        }
    }
}
