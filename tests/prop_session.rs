//! Property tests for the `PebblingSession` front door: on random DAGs,
//! every engine variant that answers the same question must certify
//! identical minima and identical floors — the incremental engine, the
//! paper's fresh-per-probe baseline, the descending schedule and the
//! cooperative portfolio cross-check each other. The session runtime
//! must be invisible to the answers: a session replayed through a
//! `ResultCache` and a session spawned onto a shared `Executor` report
//! exactly what the blocking run reports. Probes run in the decisive
//! regime (generous budgets, adequate step caps) so the answers are
//! theorems, not clock races.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use revpebble::core::{
    BudgetSchedule, Executor, MinimizeResult, PebblingSession, ResultCache, SessionOutcome,
    SolverOptions,
};
use revpebble::graph::generators::random_dag;
use revpebble::graph::Dag;
use revpebble::prelude::{PebbleOutcome, ShareOptions};

const PER_QUERY: Duration = Duration::from_secs(60);

fn decisive_base(nodes: usize) -> SolverOptions {
    SolverOptions {
        // Step caps above any optimum these little DAGs admit, so every
        // probe ends in SAT or a certified StepLimit, never a timeout.
        max_steps: 4 * nodes + 20,
        ..SolverOptions::default()
    }
}

fn session_minimize(
    dag: &Dag,
    base: SolverOptions,
    schedule: BudgetSchedule,
    incremental: bool,
) -> MinimizeResult {
    let report = PebblingSession::new(dag)
        .solver_options(base)
        .minimize()
        .budget(schedule)
        .incremental(incremental)
        .per_query_timeout(PER_QUERY)
        .run()
        .expect("a valid configuration");
    match report.outcome {
        SessionOutcome::Minimize(result) => result,
        _ => unreachable!("a single-worker minimize session ran"),
    }
}

fn assert_equivalent(dag: &Dag, label: &str, left: &MinimizeResult, right: &MinimizeResult) {
    assert_eq!(
        left.best.as_ref().map(|&(p, _)| p),
        right.best.as_ref().map(|&(p, _)| p),
        "{label}: certified minima diverge"
    );
    // Floors are engine-specific certificates (probe order decides which
    // refutations each engine pays for), so they need not be equal — but
    // each must stay below its own certified minimum.
    for result in [left, right] {
        if let Some(&(minimum, _)) = result.best.as_ref() {
            assert!(
                result.floor <= minimum,
                "{label}: floor {} above certified minimum {minimum}",
                result.floor
            );
        }
    }
    for (p, strategy) in left.best.iter().chain(right.best.iter()) {
        assert!(
            strategy.validate(dag, Some(*p)).is_ok(),
            "{label}: certified strategy invalid at budget {p}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn blocking_spawned_and_cached_runs_agree(
        inputs in 2usize..5,
        nodes in 3usize..12,
        seed in any::<u64>(),
        slack in 0usize..3,
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let budget = (revpebble::core::bounds::pebble_lower_bound(&dag) + slack)
            .min(dag.num_nodes())
            .max(1);
        let report = PebblingSession::new(&dag)
            .pebbles(budget)
            .run()
            .expect("a valid configuration");
        let SessionOutcome::Single(blocking) = &report.outcome else {
            panic!("a fixed-budget session drives the single engine");
        };
        let solved = |o: &PebbleOutcome| matches!(o, PebbleOutcome::Solved(_));
        if let PebbleOutcome::Solved(strategy) = blocking {
            prop_assert!(strategy.validate(&dag, Some(budget)).is_ok());
        }

        // The same session handed to a shared pool answers identically.
        let executor = Arc::new(Executor::new(2));
        let spawned = PebblingSession::new(&dag)
            .pebbles(budget)
            .spawn_on(&executor)
            .expect("a valid configuration")
            .join();
        prop_assert_eq!(spawned.minimum, report.minimum);
        prop_assert_eq!(spawned.floor, report.floor);
        let SessionOutcome::Single(off_thread) = &spawned.outcome else {
            panic!("the spawned session drives the same engine");
        };
        prop_assert_eq!(solved(blocking), solved(off_thread));

        // A cached replay serves the identical answer without solving.
        let cache = Arc::new(ResultCache::default());
        let first = PebblingSession::new(&dag)
            .pebbles(budget)
            .result_cache(Arc::clone(&cache))
            .run()
            .expect("a valid configuration");
        let replay = PebblingSession::new(&dag)
            .pebbles(budget)
            .result_cache(Arc::clone(&cache))
            .run()
            .expect("a valid configuration");
        prop_assert_eq!((replay.cache_hits, replay.cache_misses), (1, 0));
        prop_assert_eq!(replay.minimum, first.minimum);
        prop_assert_eq!(replay.floor, first.floor);
        prop_assert_eq!(first.minimum, report.minimum);
    }

    #[test]
    fn minimize_engine_variants_certify_the_same_answer(
        inputs in 2usize..5,
        nodes in 3usize..10,
        seed in any::<u64>(),
        stride in 1usize..4,
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let base = decisive_base(dag.num_nodes());

        let incremental = session_minimize(&dag, base, BudgetSchedule::Binary, true);
        let fresh = session_minimize(&dag, base, BudgetSchedule::Binary, false);
        assert_equivalent(&dag, "incremental vs fresh", &incremental, &fresh);

        let descending =
            session_minimize(&dag, base, BudgetSchedule::Descending { stride }, true);
        assert_equivalent(&dag, "incremental vs descending", &incremental, &descending);
    }
}

proptest! {
    // Portfolio runs spawn threads per case; fewer cases keep CI quick.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn portfolio_engines_match_their_single_worker_answers(
        inputs in 2usize..4,
        nodes in 3usize..9,
        seed in any::<u64>(),
    ) {
        let dag = random_dag(inputs, nodes, seed);
        let base = decisive_base(dag.num_nodes());

        // Fixed-budget race: same solvability as the single engine.
        let budget = dag.num_nodes().max(1);
        let single_report = PebblingSession::new(&dag)
            .pebbles(budget)
            .run()
            .expect("a valid configuration");
        let SessionOutcome::Single(single_outcome) = &single_report.outcome else {
            panic!("a fixed-budget session drives the single engine");
        };
        let report = PebblingSession::new(&dag)
            .pebbles(budget)
            .portfolio(2)
            .run()
            .expect("a valid configuration");
        let SessionOutcome::Portfolio(race) = &report.outcome else {
            panic!("a fixed-budget portfolio session drives the race engine");
        };
        prop_assert_eq!(
            matches!(single_outcome, PebbleOutcome::Solved(_)),
            matches!(race.outcome, PebbleOutcome::Solved(_))
        );

        // Cooperative minimize race: the shared portfolio and the
        // single-worker incremental engine certify the same minimum in
        // the decisive regime — whether the race runs on its private
        // per-worker threads or on a shared two-worker executor.
        let single = session_minimize(&dag, base, BudgetSchedule::Binary, true);
        let minimum = |best: &Option<(usize, revpebble::core::Strategy)>| {
            best.as_ref().map(|&(p, _)| p)
        };
        for shared_pool in [false, true] {
            let mut session = PebblingSession::new(&dag)
                .solver_options(base)
                .minimize()
                .portfolio(2)
                .share_clauses(ShareOptions::default())
                .per_query_timeout(PER_QUERY);
            if shared_pool {
                session = session.executor(Arc::new(Executor::new(2)));
            }
            let shared_report = session.run().expect("a valid configuration");
            let SessionOutcome::MinimizePortfolio(shared) = &shared_report.outcome else {
                panic!("a minimize portfolio ran");
            };
            prop_assert_eq!(minimum(&shared.best), minimum(&single.best));
            prop_assert_eq!(shared_report.minimum, minimum(&single.best));
            if let Some((p, strategy)) = &shared.best {
                prop_assert!(strategy.validate(&dag, Some(*p)).is_ok());
            }
        }
    }
}
