//! Quickstart: the paper's running example (Fig. 2 → Fig. 4).
//!
//! Builds the six-operation DAG of the paper, shows the Bennett strategy
//! (6 pebbles, 10 steps), then uses the SAT solver to fit the same
//! computation into 4 pebbles, printing both pebbling grids in the style
//! of the paper's Fig. 4.
//!
//! Run with: `cargo run --release --example quickstart`

use revpebble::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dag = revpebble::graph::generators::paper_example();
    println!("DAG: {dag}");
    println!("{}", dag.to_dot());

    // --- Bennett: compute everything, then uncompute top-down. ---
    let naive = bennett(&dag);
    naive.validate(&dag, None)?;
    println!(
        "Bennett strategy: {} pebbles, {} steps",
        naive.max_pebbles(&dag),
        naive.num_steps()
    );
    println!("{}", naive.render_grid(&dag));

    // --- SAT-based pebbling with a 4-pebble budget, through the one
    // front door every engine shares. ---
    let report = PebblingSession::new(&dag).pebbles(4).run()?;
    let tight = report.into_strategy().expect("4 pebbles are feasible");
    tight.validate(&dag, Some(4))?;
    println!(
        "SAT strategy:     {} pebbles, {} steps",
        tight.max_pebbles(&dag),
        tight.num_steps()
    );
    println!("{}", tight.render_grid(&dag));

    // --- The same bound, raced: 4 worker threads with distinct solver
    // configurations; the first strategy found cancels the rest. ---
    let raced = PebblingSession::new(&dag).pebbles(4).portfolio(4).run()?;
    let winner = raced
        .workers
        .iter()
        .find(|worker| worker.winner)
        .expect("feasible, so someone wins");
    println!(
        "Portfolio (4 workers): won by {} in {:.1?}",
        winner.config, winner.elapsed
    );
    raced
        .into_strategy()
        .expect("winner carries a strategy")
        .validate(&dag, Some(4))?;

    // --- 3 pebbles are impossible: prove it with the exact BFS solver
    // (the SAT loop can only refute one step bound at a time). ---
    match revpebble::core::solve_exact(&dag, 3) {
        revpebble::core::ExactOutcome::Infeasible => {
            println!("3 pebbles: proven infeasible by exhaustive search");
        }
        other => println!("3 pebbles: {other:?}"),
    }

    // --- Compile the tight strategy to a reversible circuit and verify. ---
    let compiled = compile(&dag, &tight)?;
    println!(
        "\nCompiled circuit: {} qubits ({} inputs + {} ancillae), {} gates",
        compiled.circuit.width(),
        dag.num_inputs(),
        compiled.circuit.width() - dag.num_inputs(),
        compiled.circuit.num_gates()
    );
    match verify(&dag, &compiled) {
        VerifyOutcome::Correct { patterns } => {
            println!("Verified on all {patterns} input patterns: outputs correct, ancillae clean.");
        }
        bad => println!("VERIFICATION FAILED: {bad:?}"),
    }
    Ok(())
}
