//! Show-case 1 (the paper's Fig. 5): pebbling an elliptic-curve
//! straight-line program under shrinking qubit budgets.
//!
//! The paper pebbles a point-addition program from fast genus-2
//! cryptography (Bos et al.) with 24, 20, 16, 12 and 10 pebbles, counting
//! how many modular additions, subtractions, squarings and multiplications
//! each budget costs. This example does the same for the projective
//! Edwards point addition (20 operations) — the Kummer ladder step used by
//! the full Fig. 5 reproduction lives in the bench harness (`fig5`).
//!
//! Run with: `cargo run --release --example edwards_curve`

use revpebble::graph::slp::edwards_add_projective;
use revpebble::graph::Op;
use revpebble::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let slp = edwards_add_projective();
    let dag = slp.to_dag()?;
    println!("Edwards point addition: {dag}");

    let naive = bennett(&dag);
    println!(
        "Bennett: {} pebbles, {} operations\n",
        naive.max_pebbles(&dag),
        naive.num_moves()
    );

    println!(
        "{:>7} {:>6} {:>5} {:>5} {:>5} {:>5} {:>6}",
        "pebbles", "steps", "Add", "Sub", "Sqr", "Mul", "total"
    );
    for budget in [16, 12, 10, 8, 7] {
        // Double K on failure, then binary-refine: much faster than the
        // paper's K+1 loop near the feasibility boundary.
        let report = PebblingSession::new(&dag)
            .pebbles(budget)
            .move_mode(MoveMode::Sequential)
            .steps(revpebble::core::StepSchedule::ExponentialRefine)
            .timeout(std::time::Duration::from_secs(30))
            .run()?;
        let revpebble::core::SessionOutcome::Single(outcome) = report.outcome else {
            unreachable!("a fixed-budget session drives the single engine");
        };
        match outcome {
            PebbleOutcome::Solved(strategy) => {
                strategy.validate(&dag, Some(budget))?;
                let counts = strategy.op_counts(&dag);
                let get = |op: Op| counts.get(&op).copied().unwrap_or(0);
                println!(
                    "{budget:>7} {:>6} {:>5} {:>5} {:>5} {:>5} {:>6}",
                    strategy.num_steps(),
                    get(Op::Add),
                    get(Op::Sub),
                    get(Op::Sqr),
                    get(Op::Mul),
                    strategy.num_moves()
                );
                // Memory profile, like the curves on top of Fig. 5.
                let profile = strategy.pebble_profile(&dag);
                let spark: String = profile
                    .iter()
                    .map(|&p| char::from_digit(p.min(9) as u32, 10).unwrap_or('+'))
                    .collect();
                println!("        memory: {spark}");
            }
            PebbleOutcome::Infeasible { lower_bound } => {
                println!("{budget:>7} infeasible (lower bound {lower_bound})");
            }
            PebbleOutcome::Timeout { steps_reached } => {
                println!("{budget:>7} timeout while trying {steps_reached} steps");
            }
            PebbleOutcome::StepLimit { steps_checked } => {
                println!("{budget:>7} no solution up to {steps_checked} steps");
            }
        }
    }
    Ok(())
}
