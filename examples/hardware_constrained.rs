//! Show-case 3 (the paper's Fig. 6): mapping a 9-input AND oracle onto a
//! 16-qubit device.
//!
//! Three implementations are compared, as in the paper:
//!
//! 1. **Bennett** — 17 qubits (does not fit the device), 15 gates;
//! 2. **Barenco** — one 9-controlled Toffoli decomposed with a single
//!    ancilla: 11 qubits but 48 gates;
//! 3. **SAT pebbling at 16 qubits** — the balanced middle ground.
//!
//! Run with: `cargo run --release --example hardware_constrained`

use revpebble::circuit::barenco;
use revpebble::graph::generators::and_tree;
use revpebble::prelude::*;

const DEVICE_QUBITS: usize = 16;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dag = and_tree(9);
    println!("9-input AND oracle: {dag}\n");
    println!(
        "{:<24} {:>7} {:>7} {:>9}",
        "method", "qubits", "gates", "fits q=16"
    );

    // 1. Bennett.
    let naive = bennett(&dag);
    let naive_circuit = compile(&dag, &naive)?;
    report(
        "Bennett",
        naive_circuit.circuit.width(),
        naive_circuit.circuit.num_gates(),
    );

    // 2. Barenco decomposition of the single 9-controlled Toffoli:
    //    9 controls + 1 target + 1 ancilla = 11 qubits, 48 gates.
    let qubits = 9 + 2;
    let gates = barenco::one_ancilla_gate_count(9);
    report("Barenco (1 ancilla)", qubits, gates);

    // 3. SAT pebbling constrained to the device: 9 input qubits leave
    //    16 − 9 = 7 pebbles for intermediate results and the output.
    let budget = DEVICE_QUBITS - dag.num_inputs();
    let strategy = PebblingSession::new(&dag)
        .pebbles(budget)
        .run()?
        .into_strategy()
        .expect("7 pebbles are feasible for the 8-node tree");
    strategy.validate(&dag, Some(budget))?;
    let compiled = compile(&dag, &strategy)?;
    report(
        "SAT pebbling @16",
        compiled.circuit.width(),
        compiled.circuit.num_gates(),
    );

    println!("\nPebbling grid for the constrained strategy:");
    println!("{}", strategy.render_grid(&dag));

    match verify(&dag, &compiled) {
        VerifyOutcome::Correct { patterns } => {
            println!("Verified the constrained circuit on all {patterns} input patterns.");
        }
        bad => println!("VERIFICATION FAILED: {bad:?}"),
    }
    Ok(())
}

fn report(method: &str, qubits: usize, gates: usize) {
    println!(
        "{method:<24} {qubits:>7} {gates:>7} {:>9}",
        if qubits <= DEVICE_QUBITS { "yes" } else { "no" }
    );
}
