//! Pebbling a logic netlist: the ISCAS'85 `c17` benchmark end to end.
//!
//! Parses the embedded `.bench` netlist, finds the minimum number of
//! pebbles the SAT solver can certify, compares against Bennett and the
//! cone-wise heuristic, compiles the best strategy to a reversible
//! circuit and verifies it on all 32 input patterns.
//!
//! Run with: `cargo run --release --example netlist_pebbling`

use std::time::Duration;

use revpebble::graph::data::C17_BENCH;
use revpebble::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dag = parse_bench(C17_BENCH)?;
    println!("c17: {dag}");

    let naive = bennett(&dag);
    println!(
        "Bennett:   {} pebbles, {} steps",
        naive.max_pebbles(&dag),
        naive.num_steps()
    );
    let greedy = cone_wise(&dag);
    greedy.validate(&dag, None)?;
    println!(
        "cone-wise: {} pebbles, {} steps",
        greedy.max_pebbles(&dag),
        greedy.num_steps()
    );

    // Table I methodology: smallest P solvable within a per-query
    // budget, driven through the session front door with a live probe
    // trace on stderr.
    let report = PebblingSession::new(&dag)
        .minimize()
        .max_steps(200)
        .per_query_timeout(Duration::from_secs(10))
        .on_event(|event| eprintln!("  {event}"))
        .run()?;
    let p = report.minimum.expect("c17 is easily pebbled");
    let probes = report.probes();
    let strategy = report.into_strategy().expect("certified");
    println!(
        "SAT:       {} pebbles, {} steps  ({probes} probes)",
        p,
        strategy.num_steps(),
    );
    strategy.validate(&dag, Some(p))?;

    let compiled = compile(&dag, &strategy)?;
    println!(
        "\nCircuit: {} qubits, {} gates",
        compiled.circuit.width(),
        compiled.circuit.num_gates()
    );
    match verify(&dag, &compiled) {
        VerifyOutcome::Correct { patterns } => {
            println!("Verified against the netlist semantics on {patterns} patterns.");
        }
        bad => println!("VERIFICATION FAILED: {bad:?}"),
    }
    Ok(())
}
